//! Hierarchical two-tier synthesis for cluster-scale fleets.
//!
//! The flat annealer searches one flow space per sub-collective whose
//! size grows with every GPU in the job; past a few dozen servers most
//! of that space is redundant — identical servers want identical local
//! aggregation, and only the server-level tree is genuinely worth
//! searching. Following the decomposition insight of TACCL
//! (arXiv:2111.04867) and TACOS (arXiv:2304.05301), hierarchical mode
//! splits the problem at the NIC boundary:
//!
//! 1. **Intra-server tier** — for each *distinct instance shape*
//!    (member count + profiled local fabric), the local aggregation
//!    star is solved once: leader candidates are ranked by the cost of
//!    their slowest member→leader edge, and the ranking is reused by
//!    every identical server. Sub-collective `m` takes the `m`-th best
//!    leader, so parallel subs spread load over disjoint NVLinks just
//!    like the flat search.
//! 2. **Inter-server tier** — the full annealed search runs over a
//!    reduced topology with **one flow endpoint per NIC** (each
//!    instance represented by a single rank), so the search space is
//!    O(servers), not O(GPUs).
//!
//! The two tiers compose back into ordinary [`Strategy`] trees: the
//! reduced solution's parent maps and roots transfer verbatim (its
//! instance ids are real instance ids), leaders come from the intra
//! tier, and the result is realized, validated by the same
//! `validate_sub`/flow-conservation machinery as flat strategies, and
//! polished with a short anneal. If composition fails validation the
//! caller falls back to the flat search — hierarchical mode can shrink
//! the search, never break it.
//!
//! Enabled via [`SynthConfig::hierarchical`](crate::solver::SynthConfig):
//! [`Hierarchical::Auto`] (the default) decomposes at 64+ GPUs.
//! AllToAll synthesis stays analytic and is unaffected.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::LogicalNode;

use crate::primitive::Primitive;
use crate::solver::{group_by_instance, instance_of, Plan, SynthRequest, Synthesizer, TreeSpec};
use crate::strategy::Strategy;

/// When the synthesizer decomposes into intra/inter tiers instead of
/// running the flat whole-fleet search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Hierarchical {
    /// Decide by fleet size: decompose at
    /// [`AUTO_GPU_THRESHOLD`](Hierarchical::AUTO_GPU_THRESHOLD)+ GPUs.
    /// Below it the flat search is tractable and explores strictly
    /// more of the space.
    #[default]
    Auto,
    /// Always decompose (when the fleet is reducible at all: at least
    /// two instances and more GPUs than instances).
    On,
    /// Never decompose.
    Off,
}

impl Hierarchical {
    /// GPU count at which [`Hierarchical::Auto`] switches to the
    /// two-tier decomposition.
    pub const AUTO_GPU_THRESHOLD: usize = 64;

    /// Whether a job with `gpus` participants over `instances` servers
    /// should synthesize hierarchically. A job with one instance, or
    /// with one GPU per instance, has nothing to decompose and always
    /// runs flat (the reduced inter-tier problem *is* such a job, which
    /// is what terminates the recursion).
    pub fn enabled_for(self, gpus: usize, instances: usize) -> bool {
        let reducible = instances >= 2 && gpus > instances;
        match self {
            Hierarchical::Off => false,
            Hierarchical::On => reducible,
            Hierarchical::Auto => reducible && gpus >= Self::AUTO_GPU_THRESHOLD,
        }
    }
}

/// Salt deriving the composed plan's polish-anneal RNG stream from the
/// request seed, distinct from the cold (`^ 0x5EED_CAFE`) and warm
/// (`^ 0x3A3A_F00D`) streams.
const HIER_POLISH_SALT: u64 = 0x41E2_7133_71E2_0001;

/// Reference payload for intra-tier leader scoring and shape-class
/// fingerprints.
const CLASS_PAYLOAD_MIB: u64 = 4;

/// Pipelining chunk floor for hierarchical fleets: one doubling per
/// fleet doubling past 32 servers, capped at 4 MiB.
///
/// Tiny chunks are the right call on a handful of servers, but on a
/// cluster-scale job every extra chunk multiplies per-message proxy
/// overhead across thousands of hop transfers, while the pipeline fill
/// it saves is already amortized over the deep inter-server tree. The
/// α–β cost model prices neither proxy wakeups nor descriptor rings, so
/// left alone it always drifts to the smallest grid entry; the floor
/// encodes that fleet-scale coarsening instead.
fn chunk_floor(instances: usize) -> ByteSize {
    let mut floor = 256 * 1024u64;
    let mut fleet = 32usize;
    while instances > fleet && floor < 4 * 1024 * 1024 {
        floor *= 2;
        fleet *= 2;
    }
    ByteSize::from_bytes(floor)
}

/// The hierarchical path of the reduce family. Returns `None` when the
/// composed strategy fails realization or validation — the caller then
/// falls back to the flat search.
pub(crate) fn synthesize_hierarchical(
    synth: &Synthesizer<'_>,
    req: &SynthRequest,
    by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
) -> Option<(Strategy, Plan)> {
    // Re-scope the synthesizer onto a chunk grid floored for this fleet
    // size, so the reduced solve, composition and polish all search the
    // coarsened grid (small fleets keep the full grid and an identical
    // synthesizer).
    let floor = chunk_floor(by_inst.len());
    let scoped: Synthesizer<'_>;
    let synth = if synth.config().chunk_grid.iter().any(|c| *c < floor) {
        let mut cfg = synth.config().clone();
        cfg.chunk_grid.retain(|c| *c >= floor);
        if cfg.chunk_grid.is_empty() {
            cfg.chunk_grid.push(floor);
        }
        let mut rescoped = Synthesizer::new(synth.topo(), synth.profile())
            .with_config(cfg)
            .with_telemetry(synth.telemetry().clone());
        if let Some(bg) = synth.background() {
            rescoped = rescoped.with_background(bg);
        }
        scoped = rescoped;
        &scoped
    } else {
        synth
    };

    // ---- Intra tier: one leader ranking per distinct instance shape.
    let leader_orders = intra_tier_orders(synth, by_inst);

    // ---- Inter tier: anneal over one endpoint per NIC.
    let endpoints: BTreeMap<InstanceId, Rank> = by_inst.iter().map(|(i, m)| (*i, m[0])).collect();
    let mut reduced = SynthRequest::new(
        req.primitive,
        req.tensor,
        req.parallelism,
        endpoints.values().copied().collect(),
    );
    reduced.seed = req.seed;
    reduced.root = req.root.map(|r| endpoints[&instance_of(synth.topo(), r)]);
    // The reduced job has exactly one GPU per instance, so this call
    // cannot re-enter the hierarchical path.
    let (_, reduced_plan) = synth.synthesize_reduce_plan(&reduced);

    // ---- Compose: reduced parent maps + roots transfer verbatim
    // (their instance ids are real), leaders come from the intra tier.
    let single_root: Option<Rank> = if req.primitive == Primitive::AllReduce && req.root.is_none() {
        None // reduced solve spread per-sub roots; keep the spread
    } else {
        Some(req.root.unwrap_or_else(|| {
            let ri = reduced_plan.specs[0].root_inst;
            by_inst[&ri][0]
        }))
    };
    let specs: Vec<TreeSpec> = reduced_plan
        .specs
        .iter()
        .enumerate()
        .map(|(m, rspec)| {
            let mut leader = BTreeMap::new();
            for (inst, members) in by_inst {
                let order = &leader_orders[inst];
                leader.insert(*inst, members[order[m % order.len()]]);
            }
            let (root, root_inst) = match single_root {
                Some(r) => (r, instance_of(synth.topo(), r)),
                None => (leader[&rspec.root_inst], rspec.root_inst),
            };
            leader.insert(root_inst, root);
            TreeSpec {
                leader,
                parent: rspec.parent.clone(),
                root,
                root_inst,
                via_hub: BTreeMap::new(),
                chunk: rspec.chunk,
                fraction: rspec.fraction,
            }
        })
        .collect();
    let plan = Plan { specs };

    // ---- Validate through the same machinery as flat strategies,
    // then polish with a short anneal (hubs and leader swaps are live
    // mutations there, so relays stay reachable in hierarchical mode).
    let model = synth.cost_model();
    let hubs = group_by_instance(synth.topo(), &req.relays);
    let (cost, strategy) = synth.eval_plan(&plan, req, by_inst, &hubs, &model)?;
    synth.telemetry().add_counter("synth.hierarchical", 1.0);
    let polish_iters = synth.config().anneal_iters / 8;
    let (_, plan, strategy) = synth.refine_plan(
        cost,
        plan,
        strategy,
        req,
        by_inst,
        &hubs,
        &model,
        polish_iters,
        req.seed ^ HIER_POLISH_SALT,
        1,
    );
    Some((strategy, plan))
}

/// Solves the intra-server tier once per distinct instance shape and
/// returns each instance's leader ranking (local indices, best first).
///
/// The shape class is the bit-exact table of profiled pairwise transfer
/// times at a reference payload: two instances share a class — and a
/// solution — only when their local fabrics profiled identically.
fn intra_tier_orders(
    synth: &Synthesizer<'_>,
    by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
) -> BTreeMap<InstanceId, Vec<usize>> {
    let reference = ByteSize::from_mib(CLASS_PAYLOAD_MIB);
    // (class fingerprint, solved leader order) per distinct shape.
    let mut classes: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
    let mut orders = BTreeMap::new();
    for (inst, members) in by_inst {
        let k = members.len();
        let mut key = Vec::with_capacity(k * k);
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    key.push(0);
                    continue;
                }
                let bits = synth
                    .topo()
                    .edge_between(LogicalNode::Gpu(members[a]), LogicalNode::Gpu(members[b]))
                    .and_then(|e| synth.profile().get(e))
                    .map(|ab| ab.transfer_time(reference).as_secs().to_bits())
                    .unwrap_or(u64::MAX);
                key.push(bits);
            }
        }
        let order = match classes.iter().find(|(fp, _)| *fp == key) {
            Some((_, order)) => order.clone(),
            None => {
                // Solve this class once: rank leader candidates by the
                // slowest member→leader edge of their aggregation star
                // (the local fan-in completes when its worst spoke
                // does), index as the deterministic tie-break.
                let cost_of = |bits: u64| {
                    if bits == u64::MAX {
                        f64::INFINITY
                    } else {
                        f64::from_bits(bits)
                    }
                };
                let mut scored: Vec<(f64, usize)> = (0..k)
                    .map(|li| {
                        let worst = (0..k)
                            .filter(|a| *a != li)
                            .map(|a| cost_of(key[a * k + li]))
                            .fold(0.0_f64, f64::max);
                        (worst, li)
                    })
                    .collect();
                scored.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
                let order: Vec<usize> = scored.into_iter().map(|(_, li)| li).collect();
                classes.push((key, order.clone()));
                order
            }
        };
        orders.insert(*inst, order);
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SynthConfig;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn synth_ctx(
        servers: usize,
    ) -> (
        adapcc_topo::logical::LogicalTopology,
        adapcc_profile::profiler::LinkProfile,
    ) {
        let cluster = Cluster::homogeneous_a100(servers);
        let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 1).run().links;
        (topo, profile)
    }

    #[test]
    fn auto_threshold_gates_decomposition() {
        let h = Hierarchical::Auto;
        assert!(!h.enabled_for(32, 8), "below the GPU threshold");
        assert!(h.enabled_for(64, 16));
        assert!(h.enabled_for(2048, 512));
        // Irreducible shapes never decompose, whatever the mode.
        for mode in [Hierarchical::Auto, Hierarchical::On] {
            assert!(!mode.enabled_for(512, 512), "one GPU per instance");
            assert!(!mode.enabled_for(8, 1), "single instance");
        }
        assert!(Hierarchical::On.enabled_for(8, 2));
        assert!(!Hierarchical::Off.enabled_for(2048, 512));
    }

    #[test]
    fn forced_hierarchical_strategies_validate() {
        let (topo, profile) = synth_ctx(4);
        let config = SynthConfig {
            anneal_iters: 24,
            hierarchical: Hierarchical::On,
            ..Default::default()
        };
        let synth = Synthesizer::new(&topo, &profile).with_config(config);
        for primitive in [
            Primitive::AllReduce,
            Primitive::Reduce,
            Primitive::Broadcast,
        ] {
            let mut req = SynthRequest::new(
                primitive,
                ByteSize::from_mib(16),
                4,
                (0..16).map(Rank).collect(),
            );
            if primitive.has_root() {
                req.root = Some(Rank(3));
            }
            let strategy = synth.synthesize(&req);
            assert!(strategy.validate(&topo).is_ok(), "{primitive} invalid");
            assert_eq!(strategy.parallelism(), 4);
        }
    }

    #[test]
    fn hierarchical_leaders_rotate_across_subs() {
        let (topo, profile) = synth_ctx(4);
        let config = SynthConfig {
            anneal_iters: 0, // composition only: no polish mutations
            hierarchical: Hierarchical::On,
            ..Default::default()
        };
        let synth = Synthesizer::new(&topo, &profile).with_config(config);
        let req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(16),
            4,
            (0..16).map(Rank).collect(),
        );
        let strategy = synth.synthesize(&req);
        // Parallel subs must not funnel every instance's fan-in through
        // one leader GPU: across 4 subs over 4-GPU instances, at least
        // two distinct aggregation points should appear per instance.
        let mut agg_points: Vec<std::collections::BTreeSet<Rank>> = vec![Default::default(); 4];
        for sub in &strategy.subs {
            for (node, &aggregates) in &sub.aggregate {
                if let (LogicalNode::Gpu(r), true) = (node, aggregates) {
                    agg_points[instance_of(&topo, *r).0].insert(*r);
                }
            }
        }
        for (inst, points) in agg_points.iter().enumerate() {
            assert!(
                points.len() >= 2,
                "instance {inst} aggregates only at {points:?}"
            );
        }
    }
}
