//! First-class process groups — the scope a collective runs over.
//!
//! Real training traffic is many overlapping process groups (DP × TP ×
//! PP plus MoE all-to-all), not one world-sized collective. A
//! [`ProcessGroup`] is the canonical representation of one such scope:
//! a sorted, deduplicated, non-empty member set tagged with the
//! parallelism axis it implements and a stable content-derived id.
//! Every layer keys on it — session strategy memos, plan-cache
//! fingerprints, co-scheduled synthesis, telemetry labels — so a TP
//! slice's plan can never serve a DP ring.
//!
//! Canonicalization lives here, once ([`ProcessGroup::canonical`]),
//! instead of ad-hoc sort-and-hope at every scope construction site.

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::Rank;

/// The parallelism axis a group implements. Purely a label — two
/// groups with identical members but different axes are *different*
/// groups (their strategies may be co-scheduled against different
/// peers), which is why the axis participates in the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupAxis {
    /// The default world/unlabelled axis.
    World,
    /// Data parallelism (gradient allreduce).
    Data,
    /// Tensor parallelism (activation allreduce).
    Tensor,
    /// Pipeline parallelism (stage-to-stage transfer).
    Pipeline,
    /// Expert parallelism (MoE all-to-all).
    Expert,
}

impl GroupAxis {
    /// Short lowercase tag used in ids and telemetry labels.
    pub fn tag(self) -> &'static str {
        match self {
            GroupAxis::World => "world",
            GroupAxis::Data => "dp",
            GroupAxis::Tensor => "tp",
            GroupAxis::Pipeline => "pp",
            GroupAxis::Expert => "ep",
        }
    }
}

/// A group construction error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// A process group must have at least one member.
    Empty,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Empty => write!(f, "process group has no members"),
        }
    }
}

impl std::error::Error for GroupError {}

/// A canonical process group: sorted deduplicated members, an axis tag,
/// and a stable FNV-1a id derived from both.
///
/// Construction goes through [`canonical`](Self::canonical) (or
/// [`canonical_with_axis`](Self::canonical_with_axis)) so every scope
/// in the system shares one normalization: members sorted ascending,
/// duplicates removed, emptiness rejected. Equality, hashing and
/// ordering are derived over the canonical fields, so the same member
/// set on the same axis is the same group wherever it was built.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessGroup {
    members: Vec<Rank>,
    axis: GroupAxis,
    id: u64,
}

impl ProcessGroup {
    /// Canonicalizes `members` into a [`GroupAxis::World`] group:
    /// sorts, deduplicates, and validates non-emptiness.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::Empty`] for an empty member set.
    pub fn canonical(members: &[Rank]) -> Result<Self, GroupError> {
        Self::canonical_with_axis(GroupAxis::World, members)
    }

    /// [`canonical`](Self::canonical) with an explicit axis tag.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::Empty`] for an empty member set.
    pub fn canonical_with_axis(axis: GroupAxis, members: &[Rank]) -> Result<Self, GroupError> {
        if members.is_empty() {
            return Err(GroupError::Empty);
        }
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let id = group_id(axis, &members);
        Ok(ProcessGroup { members, axis, id })
    }

    /// The members, sorted ascending, no duplicates.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// The parallelism axis tag.
    pub fn axis(&self) -> GroupAxis {
        self.axis
    }

    /// The stable content-derived id (FNV-1a over axis tag + members).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of members (always ≥ 1).
    #[allow(clippy::len_without_is_empty)] // canonical groups are never empty
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether `rank` is a member (binary search — members are sorted).
    pub fn contains(&self, rank: Rank) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// Whether any member is in `ranks`.
    pub fn intersects(&self, ranks: &[Rank]) -> bool {
        ranks.iter().any(|r| self.contains(*r))
    }

    /// Short deterministic label for telemetry
    /// (`<axis>.<id as 8 hex digits>`, e.g. `dp.3fa90b12`).
    pub fn label(&self) -> String {
        format!("{}.{:08x}", self.axis.tag(), self.id as u32)
    }
}

impl std::fmt::Display for ProcessGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[", self.axis.tag())?;
        for (i, r) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "]")
    }
}

/// FNV-1a over the axis tag and the canonical member list — the same
/// dependency-free stable hash the plan cache uses, so ids never vary
/// across runs, platforms, or std hasher versions.
fn group_id(axis: GroupAxis, members: &[Rank]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut push = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    push(b"adapcc-group-v1/");
    push(axis.tag().as_bytes());
    push(&[0xff]);
    push(&(members.len() as u64).to_le_bytes());
    for r in members {
        push(&(r.0 as u64).to_le_bytes());
    }
    h
}

/// FNV-1a over a sorted set of group ids — the *concurrency set*
/// component of plan fingerprints: which groups run at the same time as
/// the one being solved. `0` is reserved for "solo" (no co-scheduled
/// peers), so callers can hash it conditionally and keep historical
/// fingerprints byte-stable.
pub fn concurrency_hash(ids: &[u64]) -> u64 {
    let mut ids = ids.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut push = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    push(b"adapcc-concurrency-v1/");
    push(&(ids.len() as u64).to_le_bytes());
    for id in &ids {
        push(&id.to_le_bytes());
    }
    h.max(1) // never collide with the reserved solo marker
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_and_dedups() {
        let g = ProcessGroup::canonical(&[Rank(3), Rank(1), Rank(3), Rank(0)]).unwrap();
        assert_eq!(g.members(), &[Rank(0), Rank(1), Rank(3)]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(Rank(1)));
        assert!(!g.contains(Rank(2)));
        assert_eq!(g.axis(), GroupAxis::World);
    }

    #[test]
    fn empty_groups_are_rejected() {
        assert_eq!(ProcessGroup::canonical(&[]), Err(GroupError::Empty));
    }

    #[test]
    fn id_is_order_insensitive_and_stable() {
        let a = ProcessGroup::canonical(&[Rank(5), Rank(2)]).unwrap();
        let b = ProcessGroup::canonical(&[Rank(2), Rank(5), Rank(2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        // Different member sets and different axes get different ids.
        let c = ProcessGroup::canonical(&[Rank(2), Rank(6)]).unwrap();
        assert_ne!(a.id(), c.id());
        let d = ProcessGroup::canonical_with_axis(GroupAxis::Data, &[Rank(2), Rank(5)]).unwrap();
        assert_ne!(a.id(), d.id());
        assert_ne!(a, d);
    }

    #[test]
    fn labels_and_display_are_deterministic() {
        let g = ProcessGroup::canonical_with_axis(GroupAxis::Tensor, &[Rank(0), Rank(1)]).unwrap();
        assert!(g.label().starts_with("tp."));
        assert_eq!(g.label(), g.clone().label());
        assert_eq!(g.to_string(), "tp[0,1]");
    }

    #[test]
    fn intersects_checks_membership() {
        let g = ProcessGroup::canonical(&[Rank(1), Rank(4)]).unwrap();
        assert!(g.intersects(&[Rank(0), Rank(4)]));
        assert!(!g.intersects(&[Rank(2), Rank(3)]));
        assert!(!g.intersects(&[]));
    }

    #[test]
    fn concurrency_hash_is_set_semantics() {
        let a = concurrency_hash(&[7, 3, 3, 9]);
        let b = concurrency_hash(&[9, 7, 3]);
        assert_eq!(a, b);
        assert_ne!(a, 0, "0 is reserved for the solo case");
        assert_ne!(concurrency_hash(&[3, 9]), a);
        assert_ne!(concurrency_hash(&[]), 0);
    }
}
