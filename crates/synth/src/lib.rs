//! # adapcc-synth
//!
//! The AdapCC strategy synthesizer (paper Sec. IV-D): given a profiled
//! logical topology, it derives — per collective primitive — the
//! parallel sub-collective communication graphs, pipelining chunk sizes
//! and per-node aggregation control that minimize the predicted
//! completion time of the collective (eqs. 1–6).
//!
//! The paper solves its mixed-integer formulation with Gurobi; this
//! crate optimizes the identical objective with candidate tree
//! generation plus deterministic simulated annealing (the substitution
//! is documented in DESIGN.md). Strategies serialize to the paper's XML
//! interchange format via [`xml`].
//!
//! # Example
//!
//! ```
//! use adapcc_simnet::cluster::{Cluster, Rank};
//! use adapcc_simnet::units::ByteSize;
//! use adapcc_topo::detect::Detector;
//! use adapcc_profile::profiler::Profiler;
//! use adapcc_synth::{Primitive, SynthRequest, Synthesizer};
//!
//! let cluster = Cluster::paper_testbed();
//! let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
//! let profile = Profiler::new(&cluster, &topo, 1).run().links;
//! let req = SynthRequest::new(
//!     Primitive::AllReduce,
//!     ByteSize::from_mib(256),
//!     4,
//!     (0..24).map(Rank).collect(),
//! );
//! let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
//! assert!(strategy.validate(&topo).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coschedule;
pub mod cost;
pub mod exhaustive;
pub mod group;
pub mod hierarchy;
pub mod primitive;
pub mod solver;
pub mod strategy;
pub mod summary;
pub mod xml;

pub use coschedule::{co_schedule, contended_costs, CoScheduleOptions, CoScheduled};
pub use cost::{BackgroundLoad, CostEstimate, CostModel};
pub use exhaustive::exhaustive_optimum;
pub use group::{concurrency_hash, GroupAxis, GroupError, ProcessGroup};
pub use hierarchy::Hierarchical;
pub use primitive::Primitive;
pub use solver::{instance_of, PlanSeed, SubSeed, SynthConfig, SynthRequest, Synthesizer};
pub use strategy::{Flow, InvalidStrategy, Strategy, SubCollective};
pub use summary::{describe, stats, StrategyStats};
