//! Communication strategies (the synthesizer's output, paper Sec. IV-D).
//!
//! A [`Strategy`] for one primitive splits the tensor into `M` parallel
//! **sub-collectives** (Fig. 8(a)); each sub-collective has its own
//! communication graph — a set of [`Flow`]s routed over logical edges —
//! a chunk size for pipelined transmission, and per-node aggregation
//! flags (the `a_{m,g}` variables of eq. 2).

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{EdgeId, LogicalNode, LogicalTopology};

use crate::primitive::Primitive;

/// One routed flow: tensor data travelling from `src` to `dst` along
/// `route` (a chain of logical edges).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Origin node (holds the data).
    pub src: LogicalNode,
    /// Destination node.
    pub dst: LogicalNode,
    /// Edge chain from `src` to `dst`.
    pub route: Vec<EdgeId>,
}

impl Flow {
    /// The node sequence the flow visits, starting at `src`.
    pub fn nodes(&self, topo: &LogicalTopology) -> Vec<LogicalNode> {
        let mut v = vec![self.src];
        for e in &self.route {
            v.push(topo.edge(*e).to);
        }
        v
    }
}

/// One parallel sub-collective: a fraction of the tensor with its own
/// graph and chunk size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubCollective {
    /// Share of the total tensor carried by this sub-collective
    /// (fractions across a strategy sum to 1).
    pub fraction: f64,
    /// Pipelining chunk size `C_m`.
    pub chunk: ByteSize,
    /// Root GPU for rooted primitives.
    pub root: Option<Rank>,
    /// The routed flows.
    pub flows: Vec<Flow>,
    /// Aggregation control: nodes mapped to `true` launch aggregation
    /// kernels that synchronize same-offset chunks of all flows
    /// traversing them (eq. 2, case `a_{m,j} = 1`). Absent nodes
    /// forward flows individually.
    pub aggregate: BTreeMap<LogicalNode, bool>,
}

impl SubCollective {
    /// Whether a node aggregates in this sub-collective.
    pub fn aggregates_at(&self, node: LogicalNode) -> bool {
        self.aggregate.get(&node).copied().unwrap_or(false)
    }

    /// All nodes touched by any flow.
    pub fn nodes(&self, topo: &LogicalTopology) -> Vec<LogicalNode> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for f in &self.flows {
            for n in f.nodes(topo) {
                if seen.insert(n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// All distinct edges used by any flow.
    pub fn edges(&self) -> Vec<EdgeId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for f in &self.flows {
            for e in &f.route {
                if seen.insert(*e) {
                    out.push(*e);
                }
            }
        }
        out
    }
}

/// A complete strategy for one primitive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// The primitive the strategy implements.
    pub primitive: Primitive,
    /// The parallel sub-collectives (`M` of them).
    pub subs: Vec<SubCollective>,
}

/// Why a strategy failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidStrategy {
    /// A strategy must contain at least one sub-collective.
    NoSubCollectives,
    /// Sub-collective fractions must sum to 1 (±1e-6).
    BadFractions,
    /// A chunk size was zero.
    ZeroChunk,
    /// A flow's route does not connect its endpoints.
    BrokenRoute {
        /// Index of the offending sub-collective.
        sub: usize,
        /// Index of the offending flow.
        flow: usize,
    },
    /// Flows through an aggregating node diverge to different
    /// successors, so chunk synchronization is ill-defined.
    DivergentAggregation {
        /// Index of the offending sub-collective.
        sub: usize,
        /// The offending node.
        node: LogicalNode,
    },
    /// The union of routes contains a cycle.
    CyclicGraph {
        /// Index of the offending sub-collective.
        sub: usize,
    },
}

impl std::fmt::Display for InvalidStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidStrategy::NoSubCollectives => write!(f, "strategy has no sub-collectives"),
            InvalidStrategy::BadFractions => write!(f, "sub-collective fractions do not sum to 1"),
            InvalidStrategy::ZeroChunk => write!(f, "chunk size is zero"),
            InvalidStrategy::BrokenRoute { sub, flow } => {
                write!(
                    f,
                    "flow {flow} of sub-collective {sub} has a disconnected route"
                )
            }
            InvalidStrategy::DivergentAggregation { sub, node } => {
                write!(
                    f,
                    "aggregating node {node} of sub-collective {sub} has divergent successors"
                )
            }
            InvalidStrategy::CyclicGraph { sub } => {
                write!(f, "sub-collective {sub} routes form a cycle")
            }
        }
    }
}

impl std::error::Error for InvalidStrategy {}

impl Strategy {
    /// Number of parallel sub-collectives (`M`).
    pub fn parallelism(&self) -> usize {
        self.subs.len()
    }

    /// Checks structural invariants against the topology.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: non-empty sub-collective
    /// list, fractions summing to one, positive chunks, connected
    /// routes, convergent successors at aggregating nodes, and acyclic
    /// per-sub graphs.
    pub fn validate(&self, topo: &LogicalTopology) -> Result<(), InvalidStrategy> {
        if self.subs.is_empty() {
            return Err(InvalidStrategy::NoSubCollectives);
        }
        let total: f64 = self.subs.iter().map(|s| s.fraction).sum();
        if (total - 1.0).abs() > 1e-6 || self.subs.iter().any(|s| s.fraction < 0.0) {
            return Err(InvalidStrategy::BadFractions);
        }
        for (si, sub) in self.subs.iter().enumerate() {
            validate_sub(sub, topo, si)?;
        }
        Ok(())
    }

    /// Tensor bytes carried by sub-collective `m` for a total tensor of
    /// `total` bytes: the fractional split, rounded so the parts sum to
    /// the whole (earlier subs take the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn partition(&self, total: ByteSize, m: usize) -> ByteSize {
        assert!(m < self.subs.len(), "sub-collective {m} out of range");
        let fractions: Vec<f64> = self.subs.iter().map(|s| s.fraction).collect();
        ByteSize::from_bytes(split_sizes(&fractions, total)[m])
    }

    /// The GPUs participating as data sources or destinations.
    pub fn participants(&self) -> Vec<Rank> {
        let mut set = std::collections::BTreeSet::new();
        for sub in &self.subs {
            if let Some(r) = sub.root {
                set.insert(r);
            }
            for f in &sub.flows {
                if let LogicalNode::Gpu(r) = f.src {
                    set.insert(r);
                }
                if let LogicalNode::Gpu(r) = f.dst {
                    set.insert(r);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Builds the reverse strategy: every flow's route reversed (with
    /// each edge replaced by its opposite-direction twin), sources and
    /// destinations swapped, aggregation cleared. Turning a Reduce tree
    /// into the Broadcast the paper executes "reversely" for AllReduce.
    ///
    /// # Panics
    ///
    /// Panics if some edge has no reverse twin in the topology (cannot
    /// happen for topologies built by `adapcc-topo`, which are duplex).
    pub fn reversed(&self, topo: &LogicalTopology, primitive: Primitive) -> Strategy {
        let subs = self
            .subs
            .iter()
            .map(|sub| reversed_sub(sub, topo))
            .collect();
        Strategy { primitive, subs }
    }
}

/// Per-sub-collective half of [`Strategy::validate`]: positive chunk,
/// connected routes, convergent successors at aggregating nodes, and an
/// acyclic synchronization graph. The solver's incremental evaluator
/// revalidates only the mutated sub-collective through this, which is
/// equivalent to the full check because the per-sub invariants of
/// untouched subs cannot change.
pub(crate) fn validate_sub(
    sub: &SubCollective,
    topo: &LogicalTopology,
    si: usize,
) -> Result<(), InvalidStrategy> {
    if sub.chunk.is_zero() {
        return Err(InvalidStrategy::ZeroChunk);
    }
    for (fi, flow) in sub.flows.iter().enumerate() {
        let mut cur = flow.src;
        for e in &flow.route {
            let edge = topo.edge(*e);
            if edge.from != cur {
                return Err(InvalidStrategy::BrokenRoute { sub: si, flow: fi });
            }
            cur = edge.to;
        }
        if cur != flow.dst {
            return Err(InvalidStrategy::BrokenRoute { sub: si, flow: fi });
        }
    }
    // Aggregating nodes: all flows leaving the node go to the same
    // successor.
    let mut successor: HashMap<LogicalNode, LogicalNode> = HashMap::new();
    for flow in &sub.flows {
        let nodes = flow.nodes(topo);
        for w in nodes.windows(2) {
            let (here, next) = (w[0], w[1]);
            if sub.aggregates_at(here) {
                if let Some(prev) = successor.insert(here, next) {
                    if prev != next {
                        return Err(InvalidStrategy::DivergentAggregation {
                            sub: si,
                            node: here,
                        });
                    }
                }
            }
        }
    }
    // Acyclicity of the union graph — only needed when aggregation
    // creates cross-flow chunk dependencies. Independent point-to-point
    // flows (AlltoAll) may legally form cycles in the union
    // (gpu0→gpu1 and gpu1→gpu0).
    let any_aggregation = sub.aggregate.values().any(|v| *v);
    if any_aggregation && has_cycle(sub, topo) {
        return Err(InvalidStrategy::CyclicGraph { sub: si });
    }
    Ok(())
}

/// The deterministic largest-remainder split behind
/// [`Strategy::partition`], over raw fraction values. Exposed so the
/// solver's incremental cost state computes byte-identical partition
/// sizes without assembling a `Strategy`.
pub(crate) fn split_sizes(fractions: &[f64], total: ByteSize) -> Vec<u64> {
    let mut assigned = 0u64;
    let mut sizes = Vec::with_capacity(fractions.len());
    for (i, fraction) in fractions.iter().enumerate() {
        let size = if i + 1 == fractions.len() {
            total.as_u64() - assigned
        } else {
            ((total.as_f64() * fraction).round() as u64).min(total.as_u64() - assigned)
        };
        assigned += size;
        sizes.push(size);
    }
    sizes
}

/// One sub-collective of [`Strategy::reversed`]: every flow's route
/// reversed edge by edge (duplex twins), endpoints swapped, aggregation
/// cleared. The cost model's AllReduce duplex pricing rebuilds a single
/// mutated reverse twin through this instead of reversing the whole
/// strategy.
pub(crate) fn reversed_sub(sub: &SubCollective, topo: &LogicalTopology) -> SubCollective {
    let flows = sub
        .flows
        .iter()
        .map(|f| {
            let route: Vec<EdgeId> = f
                .route
                .iter()
                .rev()
                .map(|e| {
                    let d = topo.edge(*e);
                    topo.edge_between(d.to, d.from)
                        .expect("logical topologies are duplex")
                })
                .collect();
            Flow {
                src: f.dst,
                dst: f.src,
                route,
            }
        })
        .collect();
    SubCollective {
        fraction: sub.fraction,
        chunk: sub.chunk,
        root: sub.root,
        flows,
        aggregate: BTreeMap::new(),
    }
}

/// Cycle check over the *synchronization* graph of a sub-collective:
/// the contraction of every route to its boundary nodes (sources,
/// aggregation points, destinations). Interior forwarders (NICs) are
/// skipped — a route legitimately enters and leaves the same NIC at
/// different tree levels, which is not a dependency cycle.
fn has_cycle(sub: &SubCollective, topo: &LogicalTopology) -> bool {
    let mut adj: HashMap<LogicalNode, HashSet<LogicalNode>> = HashMap::new();
    for f in &sub.flows {
        let nodes = f.nodes(topo);
        let boundaries: Vec<LogicalNode> = nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i == 0 || *i + 1 == nodes.len() || sub.aggregates_at(**n))
            .map(|(_, n)| *n)
            .collect();
        for w in boundaries.windows(2) {
            if w[0] != w[1] {
                adj.entry(w[0]).or_default().insert(w[1]);
            }
        }
    }
    // Kahn's algorithm.
    let mut indeg: HashMap<LogicalNode, usize> = HashMap::new();
    for (n, outs) in &adj {
        indeg.entry(*n).or_insert(0);
        for o in outs {
            *indeg.entry(*o).or_insert(0) += 1;
        }
    }
    let mut queue: Vec<LogicalNode> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut visited = 0;
    while let Some(n) = queue.pop() {
        visited += 1;
        if let Some(outs) = adj.get(&n) {
            for o in outs {
                let d = indeg.get_mut(o).expect("indexed");
                *d -= 1;
                if *d == 0 {
                    queue.push(*o);
                }
            }
        }
    }
    visited != indeg.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::{Cluster, InstanceId};
    use adapcc_topo::detect::Detector;

    fn topo2() -> (Cluster, LogicalTopology) {
        let c = Cluster::homogeneous_a100(2);
        let t = Detector::new(&c, 1).run().logical_topology(&c);
        (c, t)
    }

    fn simple_reduce(topo: &LogicalTopology) -> Strategy {
        // gpu1 -> gpu0 (root) over NVLink; gpu4 -> nic1 -> nic0 -> gpu0.
        let g = |r: usize| LogicalNode::Gpu(Rank(r));
        let nic = |i: usize| LogicalNode::Nic(InstanceId(i));
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let flows = vec![
            Flow {
                src: g(1),
                dst: g(0),
                route: vec![e(g(1), g(0))],
            },
            Flow {
                src: g(4),
                dst: g(0),
                route: vec![e(g(4), nic(1)), e(nic(1), nic(0)), e(nic(0), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(0), true);
        Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(0)),
                flows,
                aggregate,
            }],
        }
    }

    #[test]
    fn valid_strategy_passes() {
        let (_c, topo) = topo2();
        let s = simple_reduce(&topo);
        assert_eq!(s.validate(&topo), Ok(()));
        assert_eq!(s.participants(), vec![Rank(0), Rank(1), Rank(4)]);
    }

    #[test]
    fn broken_route_detected() {
        let (_c, topo) = topo2();
        let mut s = simple_reduce(&topo);
        s.subs[0].flows[1].route.remove(1);
        assert!(matches!(
            s.validate(&topo),
            Err(InvalidStrategy::BrokenRoute { sub: 0, flow: 1 })
        ));
    }

    #[test]
    fn bad_fractions_detected() {
        let (_c, topo) = topo2();
        let mut s = simple_reduce(&topo);
        s.subs[0].fraction = 0.5;
        assert_eq!(s.validate(&topo), Err(InvalidStrategy::BadFractions));
    }

    #[test]
    fn divergent_aggregation_detected() {
        let (_c, topo) = topo2();
        let g = |r: usize| LogicalNode::Gpu(Rank(r));
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        // Two flows pass through gpu1 (aggregating) but then diverge.
        let flows = vec![
            Flow {
                src: g(0),
                dst: g(2),
                route: vec![e(g(0), g(1)), e(g(1), g(2))],
            },
            Flow {
                src: g(3),
                dst: g(0),
                route: vec![e(g(3), g(1)), e(g(1), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(1), true);
        let s = Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(2)),
                flows,
                aggregate,
            }],
        };
        assert!(matches!(
            s.validate(&topo),
            Err(InvalidStrategy::DivergentAggregation { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let (_c, topo) = topo2();
        let g = |r: usize| LogicalNode::Gpu(Rank(r));
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let flows = vec![
            Flow {
                src: g(0),
                dst: g(1),
                route: vec![e(g(0), g(1))],
            },
            Flow {
                src: g(1),
                dst: g(2),
                route: vec![e(g(1), g(2))],
            },
            Flow {
                src: g(2),
                dst: g(0),
                route: vec![e(g(2), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(0), true);
        let s = Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(0)),
                flows,
                aggregate,
            }],
        };
        assert_eq!(
            s.validate(&topo),
            Err(InvalidStrategy::CyclicGraph { sub: 0 })
        );
        // Without aggregation the same union cycle is legal (AlltoAll).
        let mut p2p = s.clone();
        p2p.primitive = Primitive::AllToAll;
        p2p.subs[0].aggregate.clear();
        p2p.subs[0].root = None;
        assert_eq!(p2p.validate(&topo), Ok(()));
    }

    #[test]
    fn partition_sums_to_total() {
        let (_c, topo) = topo2();
        let mut s = simple_reduce(&topo);
        s.subs = vec![
            SubCollective {
                fraction: 0.333,
                ..s.subs[0].clone()
            },
            SubCollective {
                fraction: 0.333,
                ..s.subs[0].clone()
            },
            SubCollective {
                fraction: 0.334,
                ..s.subs[0].clone()
            },
        ];
        let total = ByteSize::from_bytes(1_000_001);
        let sum: u64 = (0..3).map(|m| s.partition(total, m).as_u64()).sum();
        assert_eq!(sum, total.as_u64());
    }

    #[test]
    fn reversed_roundtrip() {
        let (_c, topo) = topo2();
        let s = simple_reduce(&topo);
        let b = s.reversed(&topo, Primitive::Broadcast);
        assert_eq!(b.validate(&topo), Ok(()));
        assert_eq!(b.subs[0].flows[0].src, LogicalNode::Gpu(Rank(0)));
        let back = b.reversed(&topo, Primitive::Reduce);
        for (orig, rt) in s.subs[0].flows.iter().zip(&back.subs[0].flows) {
            assert_eq!(orig.src, rt.src);
            assert_eq!(orig.dst, rt.dst);
            assert_eq!(orig.route, rt.route);
        }
    }
}
