//! XML interchange for strategies.
//!
//! The paper's synthesizer emits strategies "in an XML format parsed by
//! the Communicator". This module writes and parses that format with a
//! small hand-rolled serializer (no external XML dependency), e.g.:
//!
//! ```xml
//! <strategy primitive="reduce" subs="2">
//!   <sub fraction="0.5" chunk="1048576" root="0">
//!     <aggregate node="gpu0"/>
//!     <flow src="gpu1" dst="gpu0" route="12"/>
//!   </sub>
//! </strategy>
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{EdgeId, LogicalNode};

use crate::primitive::Primitive;
use crate::strategy::{Flow, Strategy, SubCollective};

/// Serializes a strategy to the XML interchange format.
///
/// # Examples
///
/// ```
/// use adapcc_synth::xml::{to_xml, from_xml};
/// use adapcc_synth::{Primitive, Strategy};
///
/// let strategy = Strategy { primitive: Primitive::AllToAll, subs: vec![] };
/// let xml = to_xml(&strategy);
/// assert!(xml.starts_with("<strategy"));
/// assert_eq!(from_xml(&xml).unwrap(), strategy);
/// ```
pub fn to_xml(strategy: &Strategy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<strategy primitive=\"{}\" subs=\"{}\">",
        strategy.primitive,
        strategy.subs.len()
    );
    for sub in &strategy.subs {
        let root_attr = sub
            .root
            .map(|r| format!(" root=\"{}\"", r.0))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  <sub fraction=\"{}\" chunk=\"{}\"{}>",
            sub.fraction,
            sub.chunk.as_u64(),
            root_attr
        );
        for (node, flag) in &sub.aggregate {
            if *flag {
                let _ = writeln!(out, "    <aggregate node=\"{}\"/>", node_name(*node));
            }
        }
        for f in &sub.flows {
            let route: Vec<String> = f.route.iter().map(|e| e.0.to_string()).collect();
            let _ = writeln!(
                out,
                "    <flow src=\"{}\" dst=\"{}\" route=\"{}\"/>",
                node_name(f.src),
                node_name(f.dst),
                route.join(",")
            );
        }
        let _ = writeln!(out, "  </sub>");
    }
    out.push_str("</strategy>\n");
    out
}

/// A parse failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError(String);

impl std::fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid strategy xml: {}", self.0)
    }
}

impl std::error::Error for ParseXmlError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseXmlError> {
    Err(ParseXmlError(msg.into()))
}

/// Parses a strategy from the XML interchange format.
///
/// # Errors
///
/// Returns [`ParseXmlError`] on malformed documents, unknown primitive
/// names, or unparseable attributes. Edge ids are *not* checked against
/// a topology — run [`Strategy::validate`] afterwards.
pub fn from_xml(xml: &str) -> Result<Strategy, ParseXmlError> {
    let mut primitive = None;
    let mut subs: Vec<SubCollective> = Vec::new();
    let mut cur: Option<SubCollective> = None;
    for raw in xml.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("<strategy") {
            let attrs = parse_attrs(rest)?;
            let name = attrs
                .get("primitive")
                .ok_or_else(|| ParseXmlError("missing primitive".into()))?;
            primitive = Some(parse_primitive(name)?);
        } else if let Some(rest) = line.strip_prefix("<sub") {
            if cur.is_some() {
                return err("nested <sub>");
            }
            let attrs = parse_attrs(rest)?;
            let fraction: f64 = attr_parse(&attrs, "fraction")?;
            let chunk: u64 = attr_parse(&attrs, "chunk")?;
            let root = match attrs.get("root") {
                Some(v) => Some(Rank(
                    v.parse().map_err(|_| ParseXmlError("bad root".into()))?,
                )),
                None => None,
            };
            cur = Some(SubCollective {
                fraction,
                chunk: ByteSize::from_bytes(chunk),
                root,
                flows: Vec::new(),
                aggregate: BTreeMap::new(),
            });
        } else if let Some(rest) = line.strip_prefix("<aggregate") {
            let attrs = parse_attrs(rest)?;
            let node = parse_node(
                attrs
                    .get("node")
                    .ok_or_else(|| ParseXmlError("aggregate missing node".into()))?,
            )?;
            match cur.as_mut() {
                Some(sub) => {
                    sub.aggregate.insert(node, true);
                }
                None => return err("<aggregate> outside <sub>"),
            }
        } else if let Some(rest) = line.strip_prefix("<flow") {
            let attrs = parse_attrs(rest)?;
            let src = parse_node(
                attrs
                    .get("src")
                    .ok_or_else(|| ParseXmlError("flow missing src".into()))?,
            )?;
            let dst = parse_node(
                attrs
                    .get("dst")
                    .ok_or_else(|| ParseXmlError("flow missing dst".into()))?,
            )?;
            let route_str = attrs
                .get("route")
                .ok_or_else(|| ParseXmlError("flow missing route".into()))?;
            let route = if route_str.is_empty() {
                Vec::new()
            } else {
                route_str
                    .split(',')
                    .map(|s| {
                        s.parse::<usize>()
                            .map(EdgeId)
                            .map_err(|_| ParseXmlError(format!("bad edge id {s}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            match cur.as_mut() {
                Some(sub) => sub.flows.push(Flow { src, dst, route }),
                None => return err("<flow> outside <sub>"),
            }
        } else if line == "</sub>" {
            match cur.take() {
                Some(sub) => subs.push(sub),
                None => return err("unmatched </sub>"),
            }
        } else if line == "</strategy>" {
            if cur.is_some() {
                return err("unterminated <sub>");
            }
            let primitive = primitive.ok_or_else(|| ParseXmlError("no <strategy>".into()))?;
            return Ok(Strategy { primitive, subs });
        } else {
            return err(format!("unexpected line: {line}"));
        }
    }
    err("missing </strategy>")
}

fn node_name(n: LogicalNode) -> String {
    match n {
        LogicalNode::Gpu(r) => format!("gpu{}", r.0),
        LogicalNode::Nic(i) => format!("nic{}", i.0),
    }
}

fn parse_node(s: &str) -> Result<LogicalNode, ParseXmlError> {
    if let Some(r) = s.strip_prefix("gpu") {
        return r
            .parse()
            .map(|x| LogicalNode::Gpu(Rank(x)))
            .map_err(|_| ParseXmlError(format!("bad gpu node {s}")));
    }
    if let Some(i) = s.strip_prefix("nic") {
        return i
            .parse()
            .map(|x| LogicalNode::Nic(InstanceId(x)))
            .map_err(|_| ParseXmlError(format!("bad nic node {s}")));
    }
    err(format!("unknown node {s}"))
}

fn parse_primitive(s: &str) -> Result<Primitive, ParseXmlError> {
    Ok(match s {
        "reduce" => Primitive::Reduce,
        "broadcast" => Primitive::Broadcast,
        "allreduce" => Primitive::AllReduce,
        "allgather" => Primitive::AllGather,
        "reducescatter" => Primitive::ReduceScatter,
        "alltoall" => Primitive::AllToAll,
        other => return err(format!("unknown primitive {other}")),
    })
}

fn attr_parse<T: std::str::FromStr>(
    attrs: &BTreeMap<String, String>,
    key: &str,
) -> Result<T, ParseXmlError> {
    attrs
        .get(key)
        .ok_or_else(|| ParseXmlError(format!("missing {key}")))?
        .parse()
        .map_err(|_| ParseXmlError(format!("bad {key}")))
}

/// Parses `key="value"` pairs from the tail of a tag.
fn parse_attrs(rest: &str) -> Result<BTreeMap<String, String>, ParseXmlError> {
    let body = rest.trim_end_matches("/>").trim_end_matches('>').trim();
    let mut out = BTreeMap::new();
    let mut s = body;
    while !s.is_empty() {
        let eq = match s.find('=') {
            Some(i) => i,
            None => break,
        };
        let key = s[..eq].trim().to_string();
        let after = &s[eq + 1..];
        let Some(q1) = after.find('"') else {
            return err("missing opening quote");
        };
        let Some(q2) = after[q1 + 1..].find('"') else {
            return err("missing closing quote");
        };
        let val = after[q1 + 1..q1 + 1 + q2].to_string();
        out.insert(key, val);
        s = after[q1 + q2 + 2..].trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    use crate::solver::{SynthRequest, Synthesizer};

    #[test]
    fn roundtrip_synthesized_strategy() {
        let c = Cluster::paper_testbed();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        let req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(64),
            4,
            (0..24).map(Rank).collect(),
        );
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        let xml = to_xml(&s);
        let back = from_xml(&xml).expect("parses");
        assert_eq!(back, s);
        assert!(back.validate(&topo).is_ok());
    }

    #[test]
    fn parses_handwritten_document() {
        let xml = r#"<strategy primitive="reduce" subs="1">
  <sub fraction="1" chunk="1048576" root="0">
    <aggregate node="gpu0"/>
    <flow src="gpu1" dst="gpu0" route="3,4"/>
  </sub>
</strategy>"#;
        let s = from_xml(xml).expect("parses");
        assert_eq!(s.primitive, Primitive::Reduce);
        assert_eq!(s.subs.len(), 1);
        assert_eq!(s.subs[0].flows[0].route, vec![EdgeId(3), EdgeId(4)]);
        assert!(s.subs[0].aggregate[&LogicalNode::Gpu(Rank(0))]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_xml("").is_err());
        assert!(from_xml("<strategy primitive=\"nope\" subs=\"0\">\n</strategy>").is_err());
        assert!(from_xml("<strategy primitive=\"reduce\" subs=\"0\">").is_err());
        let unterminated = "<strategy primitive=\"reduce\" subs=\"1\">\n  <sub fraction=\"1\" chunk=\"1\">\n</strategy>";
        assert!(from_xml(unterminated).is_err());
    }

    #[test]
    fn empty_route_flow_roundtrips() {
        let xml = "<strategy primitive=\"alltoall\" subs=\"1\">\n  <sub fraction=\"1\" chunk=\"64\">\n    <flow src=\"gpu0\" dst=\"gpu1\" route=\"\"/>\n  </sub>\n</strategy>";
        let s = from_xml(xml).expect("parses");
        assert!(s.subs[0].flows[0].route.is_empty());
    }
}
