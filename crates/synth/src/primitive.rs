//! Collective primitives and their communicated-volume formulas.

use serde::{Deserialize, Serialize};

use adapcc_simnet::units::ByteSize;

/// A collective communication primitive.
///
/// The synthesizer formulates strategies for the three representative
/// patterns — [`Reduce`](Primitive::Reduce) (many-to-one),
/// [`Broadcast`](Primitive::Broadcast) (one-to-many) and
/// [`AllToAll`](Primitive::AllToAll) (many-to-many) — and composes the
/// rest: AllReduce runs a Reduce then the Broadcast in reverse,
/// AllGather is one Broadcast per GPU, ReduceScatter one Reduce per
/// GPU (paper Sec. IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// Many-to-one aggregation onto a root.
    Reduce,
    /// One-to-many distribution from a root.
    Broadcast,
    /// Reduce followed by reverse broadcast; every rank ends with the
    /// full aggregate.
    AllReduce,
    /// Every rank ends with the concatenation of all ranks' tensors.
    AllGather,
    /// Every rank ends with one aggregated shard.
    ReduceScatter,
    /// Personalized exchange: rank i sends a distinct shard to each j.
    AllToAll,
}

impl Primitive {
    /// Whether the primitive aggregates data (launches reduce kernels).
    pub fn aggregates(self) -> bool {
        matches!(
            self,
            Primitive::Reduce | Primitive::AllReduce | Primitive::ReduceScatter
        )
    }

    /// Whether the primitive needs a designated root.
    pub fn has_root(self) -> bool {
        matches!(self, Primitive::Reduce | Primitive::Broadcast)
    }

    /// Total data volume moved for a per-rank tensor of `tensor` bytes
    /// among `n` ranks — the paper's ski-rental "buy" cost numerators
    /// (Sec. IV-C): `2(N−1)`× for AllReduce, `N`× for AlltoAll, `1`×
    /// for Broadcast; Reduce moves `(N−1)`×.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn data_volume(self, tensor: ByteSize, n: usize) -> ByteSize {
        assert!(n > 0, "collective needs at least one rank");
        let k = match self {
            Primitive::AllReduce => 2 * (n as u64 - 1),
            Primitive::Reduce | Primitive::ReduceScatter | Primitive::AllGather => n as u64 - 1,
            Primitive::AllToAll => n as u64,
            Primitive::Broadcast => 1,
        };
        ByteSize::from_bytes(tensor.as_u64() * k.max(1))
    }

    /// Short lowercase name ("allreduce").
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Reduce => "reduce",
            Primitive::Broadcast => "broadcast",
            Primitive::AllReduce => "allreduce",
            Primitive::AllGather => "allgather",
            Primitive::ReduceScatter => "reducescatter",
            Primitive::AllToAll => "alltoall",
        }
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_formulas_match_paper() {
        let t = ByteSize::from_mib(100);
        assert_eq!(
            Primitive::AllReduce.data_volume(t, 4).as_u64(),
            t.as_u64() * 6
        );
        assert_eq!(
            Primitive::AllToAll.data_volume(t, 4).as_u64(),
            t.as_u64() * 4
        );
        assert_eq!(Primitive::Broadcast.data_volume(t, 4).as_u64(), t.as_u64());
        assert_eq!(Primitive::Reduce.data_volume(t, 4).as_u64(), t.as_u64() * 3);
    }

    #[test]
    fn single_rank_volume_never_zero() {
        let t = ByteSize::from_mib(1);
        assert!(Primitive::AllReduce.data_volume(t, 1).as_u64() >= t.as_u64());
    }

    #[test]
    fn classification() {
        assert!(Primitive::Reduce.aggregates());
        assert!(!Primitive::Broadcast.aggregates());
        assert!(Primitive::Reduce.has_root());
        assert!(!Primitive::AllToAll.has_root());
        assert_eq!(Primitive::AllGather.name(), "allgather");
    }
}
