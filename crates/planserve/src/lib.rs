//! # adapcc-planserve
//!
//! Concurrent multi-job plan service: one AdapCC deployment serving
//! synthesized strategies to many training jobs at once, instead of
//! one private cache per process.
//!
//! Real clusters run many overlapping jobs whose synthesis requests
//! repeat heavily across tenants (TACCL, PCCL): job N+1 usually asks
//! for a plan some job N already paid to solve. The service exploits
//! that with three layers:
//!
//! - **[`store`]** — a fingerprint-sharded strategy store.
//!   Lookups take only a per-shard `RwLock` read guard (LRU stamps are
//!   atomics bumped under the read lock, so concurrent hits never
//!   serialize); inserts take the one shard's write lock. Each shard
//!   enforces its slice of a global byte budget with LRU eviction, so
//!   the whole store never exceeds
//!   [`ServiceConfig::byte_budget`](service::ServiceConfig).
//! - **[`admission`]** — single-flight coalescing. The first requester
//!   of a cold fingerprint becomes the *leader* and solves; every
//!   concurrent requester of the same fingerprint blocks on the
//!   leader's flight and receives the published result. A thundering
//!   herd of N identical cold requests costs exactly one solve.
//! - **cross-job warm starts** — a cold request whose *structural*
//!   fingerprint half matches a stored entry (same fleet shape,
//!   drifted measurements) receives that entry's
//!   [`PlanSeed`](adapcc_synth::solver::PlanSeed) and re-synthesizes
//!   through `Synthesizer::synthesize_warm` at ~1/8 of the cold cost,
//!   even when the measurements came from a different job.
//!
//! The facade is [`PlanService`]: sessions share
//! one `Arc<PlanService>` through `InitOptions::plan_service`, the
//! baselines `Runner` through `Runner::with_plan_service`, and the
//! `adapcc_sim serve` subcommand drives a synthetic many-job workload
//! against it. Effectiveness counters export to telemetry as
//! `planserve.*`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod service;
pub mod store;

pub use service::{PlanService, Resolved, Served, ServiceConfig, ServiceStats};
pub use store::approx_plan_bytes;
