//! Single-flight admission: coalescing identical in-flight synthesis
//! requests.
//!
//! The first thread to request a cold fingerprint becomes the
//! *leader*: it solves, publishes the result, and retires the flight.
//! Every thread that requests the same fingerprint while the flight is
//! open becomes a *waiter*: it blocks on the flight's condvar and
//! receives the leader's plan — a thundering herd of N identical cold
//! requests costs exactly one solve.
//!
//! Exactly-once is guaranteed by ordering: the leader inserts into the
//! store *before* retiring the flight, and a joiner that finds no open
//! flight re-checks the store *while still holding the flight-table
//! lock* ([`FlightTable::join`]'s `recheck` closure). So at every
//! instant a fingerprint is either served by the store, served by an
//! open flight, or safe to lead.
//!
//! A leader that dies without publishing (solver panic) marks the
//! flight failed through [`LeaderGuard`]'s `Drop` and wakes the
//! waiters, which retry admission from the top; one of them becomes
//! the next leader. No flight ever strands its herd.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use adapcc_plancache::CachedPlan;

#[derive(Debug, Default)]
struct FlightState {
    done: bool,
    failed: bool,
    result: Option<Arc<CachedPlan>>,
}

/// One in-flight synthesis: the rendezvous between a leader and its
/// waiters.
#[derive(Debug, Default)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    /// Blocks until the leader publishes or fails; `None` means the
    /// leader died and the caller must retry admission.
    pub fn wait(&self) -> Option<Arc<CachedPlan>> {
        let mut state = self.state.lock().expect("flight lock poisoned");
        while !state.done && !state.failed {
            state = self.cv.wait(state).expect("flight lock poisoned");
        }
        state.result.clone()
    }

    fn publish(&self, plan: Arc<CachedPlan>) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        state.done = true;
        state.result = Some(plan);
        self.cv.notify_all();
    }

    fn fail(&self) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        if !state.done {
            state.failed = true;
            self.cv.notify_all();
        }
    }
}

/// Outcome of one admission attempt.
#[derive(Debug)]
pub enum Joined<'t> {
    /// The store already had the plan (discovered under the table
    /// lock, after a racing leader published).
    Ready(Arc<CachedPlan>),
    /// This thread leads: solve, then [`LeaderGuard::publish`].
    Lead(LeaderGuard<'t>),
    /// Another thread leads; block on [`Flight::wait`].
    Wait(Arc<Flight>),
}

/// The open flights, keyed by fingerprint.
#[derive(Debug, Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the flight for `key`, creating it (and leading) if no
    /// flight is open. `recheck` runs under the table lock when no
    /// flight exists and should consult the store: a hit there means a
    /// previous leader just landed and no solve is needed.
    pub fn join(&self, key: u128, recheck: impl FnOnce() -> Option<Arc<CachedPlan>>) -> Joined<'_> {
        let mut flights = self.flights.lock().expect("flight table poisoned");
        if let Some(flight) = flights.get(&key) {
            return Joined::Wait(Arc::clone(flight));
        }
        if let Some(plan) = recheck() {
            return Joined::Ready(plan);
        }
        let flight = Arc::new(Flight::default());
        flights.insert(key, Arc::clone(&flight));
        Joined::Lead(LeaderGuard {
            table: self,
            key,
            flight,
            published: false,
        })
    }

    /// Open flights right now (monitoring only).
    pub fn open(&self) -> usize {
        self.flights.lock().expect("flight table poisoned").len()
    }

    fn retire(&self, key: u128) {
        self.flights
            .lock()
            .expect("flight table poisoned")
            .remove(&key);
    }
}

/// Leadership of one flight. Publish the solved plan, or drop to mark
/// the flight failed and let a waiter take over.
#[derive(Debug)]
pub struct LeaderGuard<'t> {
    table: &'t FlightTable,
    key: u128,
    flight: Arc<Flight>,
    published: bool,
}

impl LeaderGuard<'_> {
    /// Hands the solved plan to every waiter and retires the flight.
    ///
    /// Callers must insert the plan into the store *before* calling
    /// this — the exactly-once argument in the module docs depends on
    /// that order.
    pub fn publish(mut self, plan: Arc<CachedPlan>) {
        self.flight.publish(plan);
        self.published = true;
        self.table.retire(self.key);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.fail();
            self.table.retire(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_synth::solver::PlanSeed;
    use adapcc_synth::strategy::Strategy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn plan() -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            strategy: Strategy {
                primitive: adapcc_synth::primitive::Primitive::AllReduce,
                subs: vec![],
            },
            seed: PlanSeed::default(),
        })
    }

    #[test]
    fn sole_requester_leads_and_publishes() {
        let table = FlightTable::new();
        let Joined::Lead(lead) = table.join(1, || None) else {
            panic!("empty table must elect a leader");
        };
        assert_eq!(table.open(), 1);
        lead.publish(plan());
        assert_eq!(table.open(), 0);
    }

    #[test]
    fn recheck_hit_short_circuits_leadership() {
        let table = FlightTable::new();
        let p = plan();
        match table.join(1, || Some(Arc::clone(&p))) {
            Joined::Ready(got) => assert!(Arc::ptr_eq(&got, &p)),
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(table.open(), 0, "no flight opened");
    }

    #[test]
    fn herd_waits_on_the_leader() {
        let table = FlightTable::new();
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|| match table.join(42, || None) {
                    Joined::Lead(lead) => {
                        solves.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the
                        // herd to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        let p = plan();
                        lead.publish(Arc::clone(&p));
                        p
                    }
                    Joined::Wait(flight) => flight.wait().expect("leader published"),
                    Joined::Ready(p) => p,
                }));
            }
            let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(solves.load(Ordering::SeqCst), 1, "exactly one leader");
            for p in &plans[1..] {
                assert_eq!(**p, *plans[0], "waiters see the leader's plan");
            }
        });
        assert_eq!(table.open(), 0);
    }

    #[test]
    fn failed_leader_wakes_waiters_for_retry() {
        let table = FlightTable::new();
        let Joined::Lead(lead) = table.join(7, || None) else {
            panic!("expected leadership");
        };
        let Joined::Wait(flight) = table.join(7, || None) else {
            panic!("expected to wait behind the leader");
        };
        let waiter = std::thread::spawn(move || flight.wait());
        drop(lead); // leader dies without publishing
        assert_eq!(waiter.join().unwrap(), None, "waiter told to retry");
        assert_eq!(table.open(), 0, "failed flight retired");
        // Retry elects a fresh leader.
        assert!(matches!(table.join(7, || None), Joined::Lead(_)));
    }
}
