//! The sharded concurrent strategy store.
//!
//! Entries are distributed over shards by the *structural* fingerprint
//! half, so an exact entry and every shape-sibling it could warm-start
//! live behind the same lock. Reads (the overwhelmingly common
//! operation once the store is warm) take a shard's `RwLock` read
//! guard and bump the entry's recency stamp through an atomic, so
//! concurrent hits on one shard never serialize on a writer lock.
//! Writes (insert + LRU eviction) take the one shard's write lock and
//! never touch the others.
//!
//! Every shard enforces `byte_budget / shards` bytes with
//! least-recently-used eviction over a global monotonic stamp; the
//! per-shard budgets sum to at most the global budget, so the whole
//! store can never exceed it — the invariant the stress test in
//! `tests/plan_service.rs` hammers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use adapcc_plancache::{CachedPlan, Fingerprint};

/// Approximate heap footprint of one cached plan, in bytes. The store
/// budgets on this estimate (exact allocator accounting would buy
/// nothing: eviction only needs a consistent, monotone-in-size
/// measure).
pub fn approx_plan_bytes(plan: &CachedPlan) -> usize {
    use std::mem::size_of_val;
    let mut bytes = std::mem::size_of::<CachedPlan>();
    for sub in &plan.strategy.subs {
        bytes += size_of_val(sub);
        for flow in &sub.flows {
            bytes += size_of_val(flow) + flow.route.len() * std::mem::size_of::<usize>();
        }
        // BTreeMap<LogicalNode, bool>: key + value + node overhead.
        bytes += sub.aggregate.len() * 32;
    }
    for sub in &plan.seed.subs {
        bytes += size_of_val(sub);
        bytes += (sub.leader.len() + sub.parent.len() + sub.via_hub.len()) * 32;
    }
    bytes
}

#[derive(Debug)]
struct Entry {
    fp: Fingerprint,
    plan: Arc<CachedPlan>,
    bytes: usize,
    /// Recency stamp, bumped on every hit. Atomic so the read path
    /// never needs the shard's write lock.
    stamp: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u128, Entry>,
    /// Most recently inserted fingerprint per shape hash — the
    /// cross-job warm-start index.
    by_shape: HashMap<u64, Fingerprint>,
    bytes: usize,
}

/// What [`ShardedStore::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertOutcome {
    /// Whether the entry was stored (false: it alone exceeds the
    /// shard's byte budget and was rejected rather than blow it).
    pub stored: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// Fingerprint-sharded strategy store with per-shard LRU under a
/// global byte budget.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<Shard>>,
    /// Per-shard byte budget (`global / shards`).
    shard_budget: usize,
    /// Global LRU clock; one atomic increment per touch.
    tick: AtomicU64,
    /// Total stored bytes, mirrored outside the locks so monitoring
    /// never has to sweep every shard.
    total_bytes: AtomicUsize,
}

impl ShardedStore {
    /// A store of `shards` stripes splitting `byte_budget` evenly.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedStore {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            shard_budget: byte_budget / shards,
            tick: AtomicU64::new(0),
            total_bytes: AtomicUsize::new(0),
        }
    }

    fn shard(&self, fp: &Fingerprint) -> &RwLock<Shard> {
        // Shard by the structural half so exact entries and their
        // warm-startable shape siblings share a stripe.
        &self.shards[(fp.shape % self.shards.len() as u64) as usize]
    }

    fn touch(&self, entry: &Entry) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.stamp.store(now, Ordering::Relaxed);
    }

    /// Exact lookup; bumps the entry's recency under the read lock.
    pub fn get(&self, fp: &Fingerprint) -> Option<Arc<CachedPlan>> {
        let shard = self.shard(fp).read().expect("store lock poisoned");
        let entry = shard.entries.get(&fp.key())?;
        self.touch(entry);
        Some(Arc::clone(&entry.plan))
    }

    /// Warm-start candidate: the latest entry whose structural half
    /// matches `fp.shape` (the exact key is already known absent).
    pub fn warm_candidate(&self, fp: &Fingerprint) -> Option<Arc<CachedPlan>> {
        let shard = self.shard(fp).read().expect("store lock poisoned");
        let prev = shard.by_shape.get(&fp.shape)?;
        let entry = shard.entries.get(&prev.key())?;
        self.touch(entry);
        Some(Arc::clone(&entry.plan))
    }

    /// Stores a plan under its fingerprint, evicting least-recently
    /// used entries in the same shard until its byte slice fits. An
    /// entry larger than the whole shard budget is rejected outright —
    /// the global budget is an invariant, not a goal.
    pub fn insert(&self, fp: Fingerprint, plan: Arc<CachedPlan>) -> InsertOutcome {
        let bytes = approx_plan_bytes(&plan);
        if bytes > self.shard_budget {
            return InsertOutcome::default();
        }
        let mut shard = self.shard(&fp).write().expect("store lock poisoned");
        let mut outcome = InsertOutcome {
            stored: true,
            evicted: 0,
        };
        if let Some(old) = shard.entries.remove(&fp.key()) {
            shard.bytes -= old.bytes;
            self.total_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        while shard.bytes + bytes > self.shard_budget {
            let oldest = shard
                .entries
                .values()
                .min_by_key(|e| e.stamp.load(Ordering::Relaxed))
                .map(|e| e.fp)
                .expect("over budget implies non-empty");
            let gone = shard
                .entries
                .remove(&oldest.key())
                .expect("oldest key present");
            shard.bytes -= gone.bytes;
            self.total_bytes.fetch_sub(gone.bytes, Ordering::Relaxed);
            if shard.by_shape.get(&oldest.shape) == Some(&oldest) {
                shard.by_shape.remove(&oldest.shape);
            }
            outcome.evicted += 1;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        shard.entries.insert(
            fp.key(),
            Entry {
                fp,
                plan,
                bytes,
                stamp: AtomicU64::new(now),
            },
        );
        shard.by_shape.insert(fp.shape, fp);
        shard.bytes += bytes;
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        outcome
    }

    /// Total estimated bytes currently stored (always ≤ the budget).
    pub fn bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store lock poisoned").entries.len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-shard byte budget.
    pub fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::units::ByteSize;
    use adapcc_synth::primitive::Primitive;
    use adapcc_synth::solver::PlanSeed;
    use adapcc_synth::strategy::{Strategy, SubCollective};

    fn fp(shape: u64, profile: u64) -> Fingerprint {
        Fingerprint { shape, profile }
    }

    fn plan(subs: usize) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            strategy: Strategy {
                primitive: Primitive::AllReduce,
                subs: (0..subs)
                    .map(|_| SubCollective {
                        fraction: 1.0 / subs as f64,
                        chunk: ByteSize::from_kib(256),
                        root: None,
                        flows: vec![],
                        aggregate: Default::default(),
                    })
                    .collect(),
            },
            seed: PlanSeed::default(),
        })
    }

    #[test]
    fn get_after_insert_and_shape_warm_candidate() {
        let store = ShardedStore::new(4, 1 << 20);
        let f = fp(7, 9);
        assert!(store.get(&f).is_none());
        assert!(store.insert(f, plan(2)).stored);
        assert_eq!(store.get(&f).unwrap(), plan(2));
        // Same shape, different profile: warm candidate from the
        // shape index.
        assert_eq!(store.warm_candidate(&fp(7, 1)).unwrap(), plan(2));
        assert!(store.warm_candidate(&fp(8, 9)).is_none());
    }

    #[test]
    fn byte_budget_is_never_exceeded() {
        let unit = approx_plan_bytes(&plan(1));
        // Room for ~3 single-sub plans per shard.
        let store = ShardedStore::new(1, unit * 3 + unit / 2);
        for i in 0..32 {
            store.insert(fp(i, i), plan(1));
            assert!(store.bytes() <= unit * 3 + unit / 2, "over budget");
        }
        assert!(store.len() <= 3);
        assert!(store.bytes() <= store.shard_budget());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let unit = approx_plan_bytes(&plan(1));
        let store = ShardedStore::new(1, unit * 2 + unit / 2);
        store.insert(fp(1, 1), plan(1));
        store.insert(fp(2, 2), plan(1));
        let _ = store.get(&fp(1, 1)); // fp(2,2) is now the coldest
        let outcome = store.insert(fp(3, 3), plan(1));
        assert_eq!(outcome.evicted, 1);
        assert!(store.get(&fp(1, 1)).is_some());
        assert!(store.get(&fp(2, 2)).is_none());
        assert!(store.get(&fp(3, 3)).is_some());
    }

    #[test]
    fn eviction_cleans_the_shape_index() {
        let unit = approx_plan_bytes(&plan(1));
        let store = ShardedStore::new(1, unit + unit / 2);
        store.insert(fp(1, 1), plan(1));
        store.insert(fp(2, 2), plan(1)); // evicts shape 1
        assert!(
            store.warm_candidate(&fp(1, 9)).is_none(),
            "stale shape index must not serve a warm seed"
        );
    }

    #[test]
    fn oversize_entry_is_rejected_not_stored() {
        let store = ShardedStore::new(4, 64); // 16 bytes per shard
        let outcome = store.insert(fp(1, 1), plan(3));
        assert!(!outcome.stored);
        assert_eq!(store.bytes(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let store = ShardedStore::new(2, 1 << 20);
        store.insert(fp(5, 5), plan(1));
        let b1 = store.bytes();
        store.insert(fp(5, 5), plan(1));
        assert_eq!(store.bytes(), b1, "replacement must not leak bytes");
        assert_eq!(store.len(), 1);
    }
}
