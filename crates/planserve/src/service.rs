//! The [`PlanService`] facade: sharded store + single-flight admission
//! + cross-job warm starts behind one `resolve` call.
//!
//! Sessions hand the service their fingerprint and a solve closure;
//! the service decides whether the request is a [`Served::Hit`]
//! (exact entry), [`Served::Coalesced`] (another thread is solving the
//! same fingerprint right now), [`Served::Warm`] (a shape sibling's
//! seed cut the solve short), or [`Served::Cold`] (nobody has seen
//! this problem — full solve). Every outcome increments a counter in
//! [`ServiceStats`], exportable to telemetry as `planserve.*`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adapcc_plancache::{CachedPlan, Fingerprint};
use adapcc_telemetry::Telemetry;

use crate::admission::{FlightTable, Joined};
use crate::store::ShardedStore;

/// Tuning knobs for a [`PlanService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of store stripes. More shards means less read/write
    /// contention; entries for one fleet shape always share a shard.
    pub shards: usize,
    /// Global byte budget over all shards (split evenly).
    pub byte_budget: usize,
    /// Whether a cold request may warm-start from a stored shape
    /// sibling solved by another job.
    pub warm_start: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 16,
            byte_budget: 64 << 20,
            warm_start: true,
        }
    }
}

/// How one `resolve` call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Exact fingerprint was in the store.
    Hit,
    /// Another thread was solving the same fingerprint; this request
    /// blocked on its flight and shares the one solve.
    Coalesced,
    /// Solved with a warm seed from a stored shape sibling.
    Warm,
    /// Full cold solve.
    Cold,
}

/// A resolved plan plus how the service produced it.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The strategy and its seed, shared with every other requester of
    /// the same fingerprint.
    pub plan: Arc<CachedPlan>,
    /// Admission outcome.
    pub served: Served,
}

/// Snapshot of service effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Exact store hits.
    pub hits: u64,
    /// Requests that piggybacked on another thread's in-flight solve.
    pub coalesced: u64,
    /// Solves warm-started from another job's shape sibling.
    pub warm: u64,
    /// Full cold solves.
    pub cold: u64,
    /// Store entries evicted to hold the byte budget.
    pub evictions: u64,
    /// Plans rejected because they alone exceed a shard's budget.
    pub rejected: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Estimated bytes currently stored.
    pub bytes: u64,
}

/// Shared, thread-safe plan service. Clone the `Arc` into every
/// session ([`InitOptions::plan_service`]) so concurrent jobs resolve
/// against one store.
///
/// [`InitOptions::plan_service`]: https://docs.rs/adapcc-core
#[derive(Debug)]
pub struct PlanService {
    store: ShardedStore,
    flights: FlightTable,
    config: ServiceConfig,
    hits: AtomicU64,
    coalesced: AtomicU64,
    warm: AtomicU64,
    cold: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

impl Default for PlanService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl PlanService {
    /// A service with the given store geometry.
    pub fn new(config: ServiceConfig) -> Self {
        PlanService {
            store: ShardedStore::new(config.shards, config.byte_budget),
            flights: FlightTable::new(),
            config,
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            warm: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Resolves `fp` to a plan, solving at most once per distinct
    /// fingerprint across all concurrent callers.
    ///
    /// `solve` is invoked only when this thread is elected leader for
    /// a fingerprint nobody has stored. Its argument is the warm-start
    /// seed plan when a shape sibling is stored (and warm starts are
    /// enabled); it returns the solved plan plus whether the seed was
    /// actually used (`false` = the seed did not apply and the solve
    /// ran cold). `FnMut` because a waiter whose leader panicked
    /// retries admission and may be elected leader itself.
    pub fn resolve<F>(&self, fp: Fingerprint, mut solve: F) -> Resolved
    where
        F: FnMut(Option<&CachedPlan>) -> (CachedPlan, bool),
    {
        loop {
            // Fast path: no locks beyond one shard read guard.
            if let Some(plan) = self.store.get(&fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Resolved {
                    plan,
                    served: Served::Hit,
                };
            }
            match self.flights.join(fp.key(), || self.store.get(&fp)) {
                Joined::Ready(plan) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Resolved {
                        plan,
                        served: Served::Hit,
                    };
                }
                Joined::Wait(flight) => {
                    if let Some(plan) = flight.wait() {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Resolved {
                            plan,
                            served: Served::Coalesced,
                        };
                    }
                    // Leader died without publishing; retry from the
                    // top (this thread may lead the next flight).
                    continue;
                }
                Joined::Lead(lead) => {
                    let seed = if self.config.warm_start {
                        self.store.warm_candidate(&fp)
                    } else {
                        None
                    };
                    let (solved, warmed) = solve(seed.as_deref());
                    let plan = Arc::new(solved);
                    // Store BEFORE publishing/retiring the flight —
                    // the exactly-once guarantee depends on the store
                    // being authoritative the instant the flight ends.
                    let outcome = self.store.insert(fp, Arc::clone(&plan));
                    self.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
                    if !outcome.stored {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    lead.publish(Arc::clone(&plan));
                    let served = if warmed && seed.is_some() {
                        self.warm.fetch_add(1, Ordering::Relaxed);
                        Served::Warm
                    } else {
                        self.cold.fetch_add(1, Ordering::Relaxed);
                        Served::Cold
                    };
                    return Resolved { plan, served };
                }
            }
        }
    }

    /// Exact lookup without admission — never solves.
    pub fn peek(&self, fp: &Fingerprint) -> Option<Arc<CachedPlan>> {
        let plan = self.store.get(fp);
        if plan.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    /// Inserts a plan solved outside the service (e.g. a session that
    /// resolved through its private path but wants to share).
    pub fn insert(&self, fp: Fingerprint, plan: CachedPlan) {
        let outcome = self.store.insert(fp, Arc::new(plan));
        self.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
        if !outcome.stored {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Effectiveness counters plus current store occupancy.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            warm: self.warm.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries: self.store.len() as u64,
            bytes: self.store.bytes() as u64,
        }
    }

    /// Estimated bytes currently stored (always ≤ the byte budget).
    pub fn bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Exports the effectiveness counters to `telemetry` as
    /// `planserve.*`.
    pub fn export_counters(&self, telemetry: &Telemetry) {
        let stats = self.stats();
        telemetry.set_counter("planserve.hits", stats.hits as f64);
        telemetry.set_counter("planserve.coalesced", stats.coalesced as f64);
        telemetry.set_counter("planserve.warm_starts", stats.warm as f64);
        telemetry.set_counter("planserve.cold_solves", stats.cold as f64);
        telemetry.set_counter("planserve.evictions", stats.evictions as f64);
        telemetry.set_counter("planserve.rejected", stats.rejected as f64);
        telemetry.set_counter("planserve.entries", stats.entries as f64);
        telemetry.set_counter("planserve.bytes", stats.bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_synth::primitive::Primitive;
    use adapcc_synth::solver::PlanSeed;
    use adapcc_synth::strategy::Strategy;

    fn fp(shape: u64, profile: u64) -> Fingerprint {
        Fingerprint { shape, profile }
    }

    fn plan() -> CachedPlan {
        CachedPlan {
            strategy: Strategy {
                primitive: Primitive::AllReduce,
                subs: vec![],
            },
            seed: PlanSeed::default(),
        }
    }

    #[test]
    fn cold_then_hit() {
        let svc = PlanService::default();
        let r1 = svc.resolve(fp(1, 1), |seed| {
            assert!(seed.is_none(), "empty store has no warm seed");
            (plan(), false)
        });
        assert_eq!(r1.served, Served::Cold);
        let r2 = svc.resolve(fp(1, 1), |_| panic!("hit must not solve"));
        assert_eq!(r2.served, Served::Hit);
        assert!(Arc::ptr_eq(&r1.plan, &r2.plan));
        let stats = svc.stats();
        assert_eq!((stats.cold, stats.hits), (1, 1));
    }

    #[test]
    fn shape_sibling_offers_a_warm_seed() {
        let svc = PlanService::default();
        svc.resolve(fp(3, 1), |_| (plan(), false));
        let r = svc.resolve(fp(3, 2), |seed| {
            assert!(seed.is_some(), "same shape must offer a seed");
            (plan(), true)
        });
        assert_eq!(r.served, Served::Warm);
        assert_eq!(svc.stats().warm, 1);
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let svc = PlanService::new(ServiceConfig {
            warm_start: false,
            ..ServiceConfig::default()
        });
        svc.resolve(fp(3, 1), |_| (plan(), false));
        let r = svc.resolve(fp(3, 2), |seed| {
            assert!(seed.is_none(), "warm starts disabled");
            (plan(), false)
        });
        assert_eq!(r.served, Served::Cold);
    }

    #[test]
    fn seed_that_did_not_apply_counts_cold() {
        let svc = PlanService::default();
        svc.resolve(fp(3, 1), |_| (plan(), false));
        // Seed offered, but the solver reports it did not apply.
        let r = svc.resolve(fp(3, 2), |_| (plan(), false));
        assert_eq!(r.served, Served::Cold);
        assert_eq!(svc.stats().warm, 0);
        assert_eq!(svc.stats().cold, 2);
    }

    #[test]
    fn counters_export_as_planserve() {
        let svc = PlanService::default();
        svc.resolve(fp(1, 1), |_| (plan(), false));
        svc.resolve(fp(1, 1), |_| unreachable!());
        let t = Telemetry::enabled();
        svc.export_counters(&t);
        assert_eq!(t.counter("planserve.cold_solves"), 1.0);
        assert_eq!(t.counter("planserve.hits"), 1.0);
        assert_eq!(t.counter("planserve.entries"), 1.0);
    }
}
