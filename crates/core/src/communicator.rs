//! The communicator runtime (paper Sec. V-A): transmission contexts,
//! work/result queues, and the one-time set-up phase.
//!
//! In the paper each GPU process runs `M` *transmission contexts* —
//! one per parallel sub-collective — each with a persistent polling
//! thread, a dedicated CUDA stream, and three registered buffers
//! (local / receive / result) whose pointers are exchanged via CUDA
//! IPC handles at set-up (Fig. 10). Here the contexts are explicit
//! bookkeeping objects, the queues are real FIFOs, and the set-up
//! phase is charged its measured-in-the-paper costs (buffer
//! registration, IPC handle AllGather, host-IP table exchange) once
//! before training, after which the buffers are reused by every
//! request — exactly the paper's amortization argument. Execution
//! itself is single-threaded and deterministic; the per-context
//! "persistent thread + stream" concurrency is realized by the
//! executor running all sub-collectives concurrently on the simulated
//! fabric.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;

/// One transmission context: identity plus its registered buffers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionContext {
    /// Context id, shared across all processes (sub-collective id).
    pub id: usize,
    /// Per-rank simulated IPC handles for the receive buffers
    /// (rank -> opaque handle), filled by the set-up AllGather.
    pub ipc_handles: BTreeMap<usize, u64>,
    /// Host IPs for cross-server transfers (instance -> address),
    /// exchanged at set-up because CUDA IPC is intra-server only.
    pub ip_table: BTreeMap<usize, String>,
}

/// Cost accounting of the set-up phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupReport {
    /// Number of contexts created (= `M`).
    pub contexts: usize,
    /// Total simulated set-up time (buffer registration + IPC handle
    /// AllGather + IP exchange), charged once before training.
    pub elapsed: SimDuration,
}

/// A queued collective request (pushed by the ML framework).
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Monotonic request id.
    pub id: u64,
    /// Which collective to run.
    pub primitive: Primitive,
    /// Per-rank tensor size.
    pub tensor: ByteSize,
    /// Worker readiness for this iteration.
    pub ready: BTreeMap<Rank, SimTime>,
    /// Optional real payloads.
    pub inputs: Option<BTreeMap<Rank, Vec<f32>>>,
}

/// A completed collective, fetched by the ML framework.
#[derive(Debug, Clone)]
pub struct WorkResult {
    /// The request id this result answers.
    pub id: u64,
    /// Completion instant on the iteration clock.
    pub finish: SimTime,
    /// Output tensors (present when the request carried inputs).
    pub outputs: BTreeMap<Rank, Vec<f32>>,
}

/// The per-job communicator state: contexts plus the two queues.
#[derive(Debug, Default)]
pub struct Communicator {
    contexts: Vec<TransmissionContext>,
    work: VecDeque<WorkItem>,
    results: VecDeque<WorkResult>,
    next_id: u64,
    setup_done: bool,
}

/// Simulated cost of registering one GPU buffer (cudaMalloc + IPC
/// handle creation).
fn buffer_registration_cost() -> SimDuration {
    SimDuration::from_micros(700.0)
}

/// Simulated cost of the per-context IPC-handle AllGather plus stream
/// and thread creation.
fn context_exchange_cost() -> SimDuration {
    SimDuration::from_millis(2.4)
}

/// Simulated one-time host-IP table exchange.
fn ip_exchange_cost() -> SimDuration {
    SimDuration::from_millis(5.0)
}

impl Communicator {
    /// An empty communicator (call [`Communicator::setup`] first).
    pub fn new() -> Self {
        Communicator::default()
    }

    /// Whether set-up has completed.
    pub fn is_set_up(&self) -> bool {
        self.setup_done
    }

    /// The live transmission contexts.
    pub fn contexts(&self) -> &[TransmissionContext] {
        &self.contexts
    }

    /// Performs the set-up phase for `parallelism` contexts over the
    /// cluster: registers the three per-context buffers on every GPU,
    /// exchanges IPC handles with an intra-server AllGather, and
    /// builds the IP table. Idempotent: re-running replaces the
    /// contexts (used by graph reconstruction) and returns the new
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn setup(&mut self, cluster: &Cluster, parallelism: usize) -> SetupReport {
        assert!(parallelism > 0, "need at least one context");
        self.contexts.clear();
        let mut elapsed = SimDuration::ZERO;
        for id in 0..parallelism {
            let mut ipc_handles = BTreeMap::new();
            for r in 0..cluster.gpu_count() {
                // Three buffers per context per GPU: local, receive,
                // result. Registration runs per GPU but GPUs proceed in
                // parallel; the context pays one GPU's worth.
                ipc_handles.insert(r, (id as u64) << 32 | r as u64);
            }
            elapsed += buffer_registration_cost().scale(3.0) + context_exchange_cost();
            let ip_table: BTreeMap<usize, String> = (0..cluster.instance_count())
                .map(|i| (i, format!("10.0.0.{}", i + 1)))
                .collect();
            self.contexts.push(TransmissionContext {
                id,
                ipc_handles,
                ip_table,
            });
        }
        elapsed += ip_exchange_cost();
        self.setup_done = true;
        SetupReport {
            contexts: parallelism,
            elapsed,
        }
    }

    /// Pushes a collective request into the work queue; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Communicator::setup`] (the paper's
    /// buffers must exist before communication).
    pub fn submit(&mut self, mut item: WorkItem) -> u64 {
        assert!(self.setup_done, "communicator not set up");
        let id = self.next_id;
        self.next_id += 1;
        item.id = id;
        self.work.push_back(item);
        id
    }

    /// Pops the oldest pending request (the executor polls in order,
    /// like the paper's persistent context threads).
    pub fn take_work(&mut self) -> Option<WorkItem> {
        self.work.pop_front()
    }

    /// Number of pending requests.
    pub fn pending(&self) -> usize {
        self.work.len()
    }

    /// Pushes a completed result into the result queue.
    pub fn complete(&mut self, result: WorkResult) {
        self.results.push_back(result);
    }

    /// Fetches the oldest completed result, if any (the framework's
    /// blocking fetch).
    pub fn fetch(&mut self) -> Option<WorkResult> {
        self.results.pop_front()
    }

    /// IPC handle lookup for a peer's receive buffer within a context
    /// — valid only for GPUs on the same instance, as CUDA IPC cannot
    /// cross servers (paper Sec. V-A).
    ///
    /// # Panics
    ///
    /// Panics if the context id is unknown.
    pub fn peer_handle(
        &self,
        cluster: &Cluster,
        context: usize,
        me: Rank,
        peer: Rank,
    ) -> Option<u64> {
        let ctx = self
            .contexts
            .iter()
            .find(|c| c.id == context)
            .unwrap_or_else(|| panic!("unknown context {context}"));
        let (mine, _) = cluster.locate(me);
        let (theirs, _) = cluster.locate(peer);
        if mine != theirs {
            return None;
        }
        ctx.ipc_handles.get(&peer.0).copied()
    }

    /// The host address for a cross-server peer (instance) from the IP
    /// table.
    pub fn peer_address(&self, context: usize, instance: InstanceId) -> Option<&str> {
        self.contexts
            .iter()
            .find(|c| c.id == context)
            .and_then(|c| c.ip_table.get(&instance.0))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;

    #[test]
    fn setup_creates_contexts_and_charges_once() {
        let c = Cluster::paper_testbed();
        let mut comm = Communicator::new();
        let report = comm.setup(&c, 4);
        assert_eq!(report.contexts, 4);
        assert_eq!(comm.contexts().len(), 4);
        // Tens of milliseconds, not seconds: amortizable.
        assert!(report.elapsed.as_millis() > 5.0 && report.elapsed.as_millis() < 100.0);
    }

    #[test]
    fn queues_are_fifo() {
        let c = Cluster::homogeneous_a100(1);
        let mut comm = Communicator::new();
        comm.setup(&c, 2);
        let mk = |p| WorkItem {
            id: 0,
            primitive: p,
            tensor: ByteSize::from_mib(1),
            ready: BTreeMap::new(),
            inputs: None,
        };
        let a = comm.submit(mk(Primitive::AllReduce));
        let b = comm.submit(mk(Primitive::AllToAll));
        assert_eq!(comm.pending(), 2);
        assert_eq!(comm.take_work().unwrap().id, a);
        assert_eq!(comm.take_work().unwrap().id, b);
        comm.complete(WorkResult {
            id: b,
            finish: SimTime::ZERO,
            outputs: BTreeMap::new(),
        });
        comm.complete(WorkResult {
            id: a,
            finish: SimTime::ZERO,
            outputs: BTreeMap::new(),
        });
        assert_eq!(comm.fetch().unwrap().id, b);
        assert_eq!(comm.fetch().unwrap().id, a);
        assert!(comm.fetch().is_none());
    }

    #[test]
    #[should_panic(expected = "not set up")]
    fn submit_requires_setup() {
        let mut comm = Communicator::new();
        let _ = comm.submit(WorkItem {
            id: 0,
            primitive: Primitive::AllReduce,
            tensor: ByteSize::from_mib(1),
            ready: BTreeMap::new(),
            inputs: None,
        });
    }

    #[test]
    fn ipc_is_intra_server_only() {
        let c = Cluster::homogeneous_a100(2);
        let mut comm = Communicator::new();
        comm.setup(&c, 1);
        // Ranks 0 and 1 share instance 0; rank 4 is on instance 1.
        assert!(comm.peer_handle(&c, 0, Rank(0), Rank(1)).is_some());
        assert!(comm.peer_handle(&c, 0, Rank(0), Rank(4)).is_none());
        assert_eq!(comm.peer_address(0, InstanceId(1)), Some("10.0.0.2"));
    }

    #[test]
    fn resetup_replaces_contexts() {
        let c = Cluster::homogeneous_a100(1);
        let mut comm = Communicator::new();
        comm.setup(&c, 4);
        let again = comm.setup(&c, 2);
        assert_eq!(comm.contexts().len(), 2);
        assert_eq!(again.contexts, 2);
    }
}
