//! Lowering a [`CollectiveSpec`] onto concrete per-stage sub-plans.
//!
//! [`expand`] turns a spec plus the call parameters (root, tensor,
//! worker set) into a list of [`StagePlan`]s: for each stage, the
//! sub-collectives to synthesize (their root, participant scope and
//! tensor size) and how the caller's input buffers slice onto each
//! sub-collective. Expansion is pure — no synthesis, no execution —
//! so a plan can be inspected and tested without a session.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::group::ProcessGroup;
use adapcc_synth::primitive::Primitive;

use crate::collective::spec::{CollectiveSpec, Fanout, ShardRule, StageSpec};
use crate::error::AdapCCError;

/// Canonical key of one synthesized strategy in the session's
/// per-worker-set memo: the primitive, tensor size, optional root and
/// optional participant scope (`None` = the full worker set).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StrategyKey {
    /// The primitive the strategy implements.
    pub primitive: Primitive,
    /// Tensor size in bytes.
    pub tensor: u64,
    /// Root rank for rooted primitives.
    pub root: Option<Rank>,
    /// Participant process group (canonical: sorted, deduplicated,
    /// non-empty); `None` spans the whole job.
    pub scope: Option<ProcessGroup>,
}

/// One sub-collective of one stage: what to synthesize and which slot
/// of the call tensor it carries.
#[derive(Debug, Clone)]
pub struct SubPlan {
    /// Root of the synthesized strategy (`None` lets the synthesizer
    /// choose; resolved during planning for stages that chain).
    pub root: Option<Rank>,
    /// Participant process group (`None` = all workers).
    pub scope: Option<ProcessGroup>,
    /// Tensor this sub-collective moves.
    pub tensor: ByteSize,
    /// The worker whose data (or result slot) this sub carries, for
    /// fanned-out stages; `None` for single-fanout stages.
    pub owner: Option<Rank>,
    /// Slot index in the rank-ordered worker list (drives input
    /// slicing and output concatenation).
    pub slot: usize,
}

impl SubPlan {
    /// The memo key of this sub-plan's strategy.
    pub fn key(&self, primitive: Primitive) -> StrategyKey {
        StrategyKey {
            primitive,
            tensor: self.tensor.as_u64(),
            root: self.root,
            scope: self.scope.clone(),
        }
    }
}

/// One lowered stage: the primitive, the fanout/shard it was expanded
/// under, and its sub-plans in slot order.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// The primitive every sub-collective of this stage runs.
    pub primitive: Primitive,
    /// The fanout the stage expanded under.
    pub fanout: Fanout,
    /// The shard rule the stage expanded under.
    pub shard: ShardRule,
    /// Sub-plans in slot order (pairwise fanout skips the root's
    /// slot, but slot indices still index the full worker list).
    pub subs: Vec<SubPlan>,
}

impl StagePlan {
    /// Slices the caller's input buffers onto one sub-plan, mirroring
    /// the shard rule: full-tensor subs see the whole map (the
    /// executor picks the entries its primitive consumes), split subs
    /// see their slot's shard.
    pub fn sub_inputs(
        &self,
        sub: &SubPlan,
        inputs: &BTreeMap<Rank, Vec<f32>>,
        call_root: Option<Rank>,
    ) -> BTreeMap<Rank, Vec<f32>> {
        let elems = (sub.tensor.as_u64() / 4) as usize;
        match (self.shard, self.fanout) {
            (ShardRule::Full, Fanout::Pairwise { .. }) => {
                // Gather: only the owner's tensor rides this pairwise
                // broadcast.
                let owner = sub.owner.expect("pairwise subs have owners");
                inputs
                    .get(&owner)
                    .map(|b| (owner, b.clone()))
                    .into_iter()
                    .collect()
            }
            (ShardRule::Full, _) => inputs.clone(),
            (ShardRule::SplitEven, Fanout::Pairwise { .. }) => {
                // Scatter: the owner's shard of the root tensor.
                let root = call_root.expect("split pairwise requires a root");
                inputs
                    .get(&root)
                    .map(|b| (root, b[sub.slot * elems..(sub.slot + 1) * elems].to_vec()))
                    .into_iter()
                    .collect()
            }
            (ShardRule::SplitEven, _) => {
                // ReduceScatter: shard `slot` of every input feeds the
                // reduce rooted at this slot's owner.
                inputs
                    .iter()
                    .map(|(r, buf)| (*r, buf[sub.slot * elems..(sub.slot + 1) * elems].to_vec()))
                    .collect()
            }
        }
    }
}

fn shard_tensor(rule: ShardRule, tensor: ByteSize, n: usize) -> Result<ByteSize, AdapCCError> {
    match rule {
        ShardRule::Full => Ok(tensor),
        ShardRule::SplitEven => {
            if !tensor.as_u64().is_multiple_of(4 * n as u64) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "tensor of {} bytes must split into f32 shards over {n} worker(s)",
                    tensor.as_u64()
                )));
            }
            Ok(ByteSize::from_bytes(tensor.as_u64() / n as u64))
        }
    }
}

fn expand_stage(
    stage: &StageSpec,
    root: Option<Rank>,
    tensor: ByteSize,
    workers: &[Rank],
) -> Result<StagePlan, AdapCCError> {
    let stage_tensor = shard_tensor(stage.shard, tensor, workers.len())?;
    let subs = match stage.fanout {
        Fanout::Single => vec![SubPlan {
            root,
            scope: None,
            tensor: stage_tensor,
            owner: None,
            slot: 0,
        }],
        Fanout::PerWorker => workers
            .iter()
            .enumerate()
            .map(|(j, w)| SubPlan {
                root: Some(*w),
                scope: None,
                tensor: stage_tensor,
                owner: Some(*w),
                slot: j,
            })
            .collect(),
        Fanout::Pairwise { worker_is_root } => {
            let call_root = root.expect("validated: pairwise fanout requires a root");
            workers
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != call_root)
                .map(|(j, w)| {
                    let scope = ProcessGroup::canonical(&[*w, call_root])
                        .expect("a pair scope is never empty");
                    SubPlan {
                        root: Some(if worker_is_root { *w } else { call_root }),
                        scope: Some(scope),
                        tensor: stage_tensor,
                        owner: Some(*w),
                        slot: j,
                    }
                })
                .collect()
        }
    };
    Ok(StagePlan {
        primitive: stage.primitive,
        fanout: stage.fanout,
        shard: stage.shard,
        subs,
    })
}

/// Lowers a spec onto the current worker set. Fails with
/// [`AdapCCError::InvalidRequest`] when an even-split stage cannot
/// shard the tensor over the workers — the error surfaces through the
/// recovery loop untouched, so a caller whose worker count shrank
/// through exclusion re-shards and retries.
pub fn expand(
    spec: &CollectiveSpec,
    root: Option<Rank>,
    tensor: ByteSize,
    workers: &[Rank],
) -> Result<Vec<StagePlan>, AdapCCError> {
    debug_assert!(spec.validate().is_ok(), "invalid spec {}", spec.name);
    spec.stages
        .iter()
        .map(|stage| expand_stage(stage, root, tensor, workers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: usize) -> Vec<Rank> {
        (0..n).map(Rank).collect()
    }

    #[test]
    fn allgather_expands_per_worker() {
        let plan = expand(
            &CollectiveSpec::allgather(),
            None,
            ByteSize::from_kib(16),
            &workers(4),
        )
        .unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].subs.len(), 4);
        for (j, sub) in plan[0].subs.iter().enumerate() {
            assert_eq!(sub.root, Some(Rank(j)));
            assert_eq!(sub.owner, Some(Rank(j)));
            assert_eq!(sub.slot, j);
            assert_eq!(sub.tensor, ByteSize::from_kib(16));
        }
    }

    #[test]
    fn reduce_scatter_shards_and_rejects_indivisible() {
        let plan = expand(
            &CollectiveSpec::reduce_scatter(),
            None,
            ByteSize::from_bytes(4 * 1024 * 4),
            &workers(4),
        )
        .unwrap();
        assert_eq!(plan[0].subs.len(), 4);
        assert_eq!(plan[0].subs[0].tensor.as_u64(), 1024 * 4);
        let err = expand(
            &CollectiveSpec::reduce_scatter(),
            None,
            ByteSize::from_bytes(1000),
            &workers(3),
        )
        .unwrap_err();
        assert!(matches!(err, AdapCCError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn gather_is_pairwise_rooted_at_workers() {
        let plan = expand(
            &CollectiveSpec::gather(),
            Some(Rank(1)),
            ByteSize::from_kib(4),
            &workers(3),
        )
        .unwrap();
        let subs = &plan[0].subs;
        assert_eq!(subs.len(), 2, "the root has no pairwise sub");
        assert_eq!(subs[0].root, Some(Rank(0)));
        assert_eq!(
            subs[0].scope,
            Some(ProcessGroup::canonical(&[Rank(0), Rank(1)]).unwrap())
        );
        assert_eq!(subs[0].slot, 0);
        assert_eq!(subs[1].root, Some(Rank(2)));
        assert_eq!(subs[1].slot, 2, "slots index the full worker list");
    }

    #[test]
    fn scatter_slices_the_root_tensor() {
        let spec = CollectiveSpec::scatter();
        let plan = expand(
            &spec,
            Some(Rank(0)),
            ByteSize::from_bytes(3 * 8),
            &workers(3),
        )
        .unwrap();
        let stage = &plan[0];
        assert!(stage.subs.iter().all(|s| s.root == Some(Rank(0))));
        let inputs: BTreeMap<Rank, Vec<f32>> =
            [(Rank(0), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])].into();
        let sliced = stage.sub_inputs(&stage.subs[1], &inputs, Some(Rank(0)));
        assert_eq!(sliced[&Rank(0)], vec![4.0, 5.0], "slot 2 shard");
    }
}
