//! The phase-1 / phase-2 partial-execution paths behind a `Partial`
//! relay decision: the adaptive AllReduce's relay protocol
//! (single-fanout specs, paper Sec. IV-C) and the composite by-owner
//! split (fanned specs — ready owners' sub-collectives run in
//! phase 1, surviving stragglers' complete in phase 2).

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::hardware::kernel_launch_overhead;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::strategy::Strategy;

use crate::collective::assemble::SlotOutput;
use crate::collective::pipeline::{ExecOutcome, PartialPlan, Planned};
use crate::collective::plan::StrategyKey;
use crate::error::AdapCCError;
use crate::executor::ExecutionRequest;
use crate::relay::restrict_to_active;
use crate::session::AdapCC;

impl<'c> AdapCC<'c> {
    /// The adaptive AllReduce phase-1 / phase-2 protocol (paper
    /// Sec. IV-C): phase 1 runs the strategy with relay sources muted,
    /// phase 2 broadcasts each late worker's missed fraction and
    /// combines locally.
    pub(super) fn execute_partial_single(
        &mut self,
        planned: &Planned<'_>,
        partial: &PartialPlan<'_>,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<ExecOutcome, AdapCCError> {
        let workers = self.scope_workers();
        let strategy = planned.strategies[0][0].clone();
        let tensor = planned.tensor;
        let (start, active) = (partial.start, partial.active);
        let root = strategy.subs[0]
            .root
            .expect("allreduce strategies are rooted");
        // Phase 1: same graph, relay sources muted; sends begin at the
        // trigger instant.
        let phase1_strategy = restrict_to_active(&strategy, active);
        let mut phase1_ready: BTreeMap<Rank, SimTime> = BTreeMap::new();
        for r in active {
            let t = ready.get(r).copied().unwrap_or(SimTime::ZERO);
            phase1_ready.insert(*r, t.max(start));
        }
        let mut req = ExecutionRequest::timing(&phase1_strategy, tensor).with_ready(phase1_ready);
        if let Some(inp) = inputs {
            let active_inputs: BTreeMap<Rank, Vec<f32>> = inp
                .iter()
                .filter(|(r, _)| active.contains(r))
                .map(|(r, b)| (*r, b.clone()))
                .collect();
            req = req.with_inputs(active_inputs);
        }
        let phase1 = self.executor().try_execute(&[req])?;
        let phase1_end = phase1.finish;

        // Fault detection: stragglers still unready T_fault after
        // phase 1 are excluded. The late set is every worker outside
        // phase 1 — including relay-ineligible probation ranks, whose
        // data must still arrive — minus the faults.
        let faults = self.coordinator.detect_faults(&workers, ready, phase1_end);
        let late: Vec<Rank> = workers
            .iter()
            .copied()
            .filter(|r| !active.contains(r) && !faults.contains(r))
            .collect();

        // Phase 2: late tensors are broadcast and locally combined
        // with the phase-1 result. A late worker whose tensor became
        // ready *during* phase 1 joined the ongoing aggregation for
        // the chunks still in flight (paper Sec. IV-C), so only its
        // missed fraction rides the phase-2 broadcast.
        let mut finish = phase1_end;
        if !late.is_empty() {
            let phase1_span = phase1_end.duration_since(start).as_secs().max(1e-9);
            let bstrats: Vec<(Strategy, Rank, ByteSize)> = late
                .iter()
                .map(|r| {
                    let t = ready.get(r).copied().unwrap_or(phase1_end);
                    let missed = if t >= phase1_end {
                        1.0
                    } else {
                        // Fraction of chunks already aggregated when
                        // this worker's buffer filled.
                        (t.duration_since(start.min(t)).as_secs() / phase1_span).clamp(0.0, 1.0)
                    };
                    let bytes = ((tensor.as_f64() * missed) as u64 / 4).max(1) * 4;
                    let key = StrategyKey {
                        primitive: adapcc_synth::primitive::Primitive::Broadcast,
                        tensor: tensor.as_u64(),
                        root: Some(*r),
                        scope: self.active_scope.clone(),
                    };
                    (
                        self.strategy_for_key(&key).clone(),
                        *r,
                        ByteSize::from_bytes(bytes),
                    )
                })
                .collect();
            let requests: Vec<ExecutionRequest<'_>> = bstrats
                .iter()
                .map(|(s, r, bytes)| {
                    let mut m = BTreeMap::new();
                    let t = ready.get(r).copied().unwrap_or(phase1_end);
                    m.insert(*r, t.max(phase1_end));
                    ExecutionRequest::timing(s, *bytes).with_ready(m)
                })
                .collect();
            let phase2 = self.executor().try_execute(&requests)?;
            // Local combine kernels, one per late tensor.
            let (inst, _) = self.cluster.locate(root);
            let combine = kernel_launch_overhead()
                + self
                    .cluster
                    .spec(inst)
                    .gpu
                    .reduce_bandwidth()
                    .time_for(tensor);
            finish = phase2.finish + combine.scale(late.len() as f64);
        }

        // Final values: phase-1 partial sum + late tensors.
        let mut outputs = BTreeMap::new();
        if let Some(inp) = inputs {
            let elems = (tensor.as_u64() / 4) as usize;
            let base = phase1
                .requests
                .first()
                .and_then(|r| r.outputs.values().next().cloned())
                .unwrap_or_else(|| vec![0.0; elems]);
            let mut total = base;
            for r in &late {
                for (d, v) in total.iter_mut().zip(&inp[r]) {
                    *d += v;
                }
            }
            for w in workers.iter().filter(|w| !faults.contains(w)) {
                outputs.insert(*w, total.clone());
            }
        }

        Ok(ExecOutcome {
            finish,
            outputs: Some(outputs),
            slots: Vec::new(),
            faults,
        })
    }

    /// The composite phase-1 / phase-2 protocol: sub-collectives owned
    /// by ready workers run in phase 1 (relay GPUs keep forwarding on
    /// the routes of others, and their buffers are consumed as chunks
    /// land, Sec. IV-C); sub-collectives owned by surviving stragglers
    /// complete in phase 2 once their tensors are available.
    pub(super) fn execute_partial_fanout(
        &mut self,
        planned: &Planned<'_>,
        partial: &PartialPlan<'_>,
        eff: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<ExecOutcome, AdapCCError> {
        let workers = self.scope_workers();
        let stage = &planned.stages[0];
        let strategies = &planned.strategies[0];
        let owner_of = |i: usize| stage.subs[i].owner.expect("fanned subs have owners");
        let (start, active) = (partial.start, partial.active);

        // Phase 1: the ready workers' sub-collectives, sends clamped
        // to the trigger instant.
        let mut phase1_ready: BTreeMap<Rank, SimTime> = BTreeMap::new();
        for r in active {
            phase1_ready.insert(*r, eff[r].max(start));
        }
        let p1_idx: Vec<usize> = (0..stage.subs.len())
            .filter(|i| active.contains(&owner_of(*i)))
            .collect();
        let p1_requests: Vec<ExecutionRequest<'_>> = p1_idx
            .iter()
            .map(|&i| {
                let sub = &stage.subs[i];
                let mut req = ExecutionRequest::timing(&strategies[i], sub.tensor)
                    .with_ready(phase1_ready.clone());
                if let Some(inp) = inputs {
                    req = req.with_inputs(stage.sub_inputs(sub, inp, planned.root));
                }
                req
            })
            .collect();
        let phase1 = self.executor().try_execute(&p1_requests)?;
        let phase1_end = phase1.finish;

        // Stragglers still unready T_fault past phase 1 are faults;
        // the rest — relay-assigned or not — complete in phase 2.
        let faults = self.coordinator.detect_faults(&workers, eff, phase1_end);
        let late: Vec<Rank> = workers
            .iter()
            .copied()
            .filter(|r| !active.contains(r) && !faults.contains(r))
            .collect();
        let p2_idx: Vec<usize> = (0..stage.subs.len())
            .filter(|i| late.contains(&owner_of(*i)))
            .collect();
        let mut finish = phase1_end;
        let mut p2_outputs: Vec<BTreeMap<Rank, Vec<f32>>> = Vec::new();
        if !p2_idx.is_empty() {
            let p2_ready: BTreeMap<Rank, SimTime> = workers
                .iter()
                .map(|w| (*w, eff[w].max(phase1_end)))
                .collect();
            let requests: Vec<ExecutionRequest<'_>> = p2_idx
                .iter()
                .map(|&i| {
                    let sub = &stage.subs[i];
                    let mut req = ExecutionRequest::timing(&strategies[i], sub.tensor)
                        .with_ready(p2_ready.clone());
                    if let Some(inp) = inputs {
                        req = req.with_inputs(stage.sub_inputs(sub, inp, planned.root));
                    }
                    req
                })
                .collect();
            let phase2 = self.executor().try_execute(&requests)?;
            finish = phase2.finish;
            p2_outputs = phase2.requests.into_iter().map(|r| r.outputs).collect();
        }

        let mut slots: Vec<SlotOutput> = Vec::new();
        for (k, &i) in p1_idx.iter().enumerate() {
            slots.push(SlotOutput {
                owner: owner_of(i),
                slot: stage.subs[i].slot,
                outputs: Some(phase1.requests[k].outputs.clone()),
            });
        }
        for (k, &i) in p2_idx.iter().enumerate() {
            slots.push(SlotOutput {
                owner: owner_of(i),
                slot: stage.subs[i].slot,
                outputs: Some(p2_outputs[k].clone()),
            });
        }
        for i in 0..stage.subs.len() {
            if faults.contains(&owner_of(i)) {
                slots.push(SlotOutput {
                    owner: owner_of(i),
                    slot: stage.subs[i].slot,
                    outputs: None,
                });
            }
        }

        Ok(ExecOutcome {
            finish,
            outputs: None,
            slots,
            faults,
        })
    }
}
