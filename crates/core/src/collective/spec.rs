//! The declarative collective grammar (paper Sec. IV-D).
//!
//! AdapCC composes every collective out of two base primitives:
//! AllReduce = Reduce + reverse Broadcast, AllGather = per-GPU
//! Broadcasts. A [`CollectiveSpec`] captures that composition as data —
//! which primitive each stage runs, how it fans out into
//! sub-collectives, how the call tensor shards across them, whether the
//! relay coordinator is consulted, and how per-sub outputs assemble
//! into the collective's result. The staged pipeline (the private
//! `pipeline` sibling module) lowers a spec onto synthesized
//! strategies and executes it; adding a collective means writing a new
//! spec, not a new orchestration method (the TACCL/SCCL lesson:
//! declarative specs over a common engine keep a synthesizer
//! extensible).

use adapcc_synth::primitive::Primitive;

/// How a stage fans out into sub-collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// One synthesized strategy spanning every worker.
    Single,
    /// One sub-collective per worker, rooted at that worker and
    /// spanning the full worker set (AllGather = per-GPU Broadcasts,
    /// paper Sec. IV-D).
    PerWorker,
    /// One sub-collective per non-root worker `w`, spanning exactly
    /// `{w, root}` — a synthesized point-to-point route.
    /// `worker_is_root` picks which end sources the data: the worker
    /// (Gather) or the call root (Scatter).
    Pairwise {
        /// Whether the per-worker end (rather than the call root)
        /// roots each pairwise sub-collective.
        worker_is_root: bool,
    },
}

/// How the call tensor maps onto each sub-collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRule {
    /// Every sub-collective moves the full call tensor.
    Full,
    /// The call tensor splits into `N` equal f32 shards, one per worker
    /// slot. A tensor that does not divide evenly is rejected with
    /// [`crate::error::AdapCCError::InvalidRequest`] — including when
    /// fault exclusion has shrunk `N` since the caller sharded its
    /// data.
    SplitEven,
}

/// How per-sub executor outputs assemble into the collective's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssembleRule {
    /// The single sub-collective's outputs are the result.
    Identity,
    /// Every worker receives the rank-ordered concatenation of all
    /// slots (AllGather).
    ConcatSlots,
    /// Each slot owner keeps its own aggregated shard (ReduceScatter).
    OwnerShard,
    /// The root receives the rank-ordered concatenation of all slots
    /// (Gather).
    ConcatAtRoot,
    /// Each slot owner receives its shard of the root tensor (Scatter).
    OwnerSlice,
}

/// Whether the relay [`crate::relay::Coordinator`] is consulted before
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayPolicy {
    /// Wait for the slowest worker; the coordinator is never consulted
    /// and the decision is always `WaitAll`.
    WaitAll,
    /// Consult the ski-rental rule each iteration: wait while waiting
    /// is cheap, otherwise run phase 1 among the ready workers with the
    /// stragglers as relays and complete their contributions in
    /// phase 2.
    Adaptive {
        /// How workers absent from the `ready` map are read: fault
        /// candidates (the adaptive AllReduce API contract) or
        /// ready-at-zero (the composite entry points, whose callers
        /// historically passed partial or empty maps).
        missing_is_fault: bool,
    },
}

/// One stage of a collective's DAG: a primitive, its fanout, and how
/// the tensor shards across the fanned-out sub-collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// The primitive each sub-collective of this stage runs.
    pub primitive: Primitive,
    /// How the stage fans out into sub-collectives.
    pub fanout: Fanout,
    /// How the call tensor maps onto each sub-collective.
    pub shard: ShardRule,
}

/// A complete declarative collective: stages, relay policy, assembly
/// rule, and pipeline knobs. Every public entry point of
/// [`crate::AdapCC`] is one of these; the staged pipeline
/// (plan → relay → execute → assemble, wrapped in the recovery loop)
/// is shared by all of them.
#[derive(Debug, Clone)]
pub struct CollectiveSpec {
    /// Human-readable name (spans, errors, docs).
    pub name: &'static str,
    /// The stage DAG, executed in order; stage `k+1` starts when stage
    /// `k` has drained and consumes its outputs.
    pub stages: Vec<StageSpec>,
    /// Whether/how the relay coordinator is consulted.
    pub relay: RelayPolicy,
    /// How the final stage's per-sub outputs become the result.
    pub assemble: AssembleRule,
    /// Whether the request rides the communicator work/result queues
    /// (paper Fig. 4) — single-stage single-fanout specs only.
    pub queue: bool,
    /// Whether the entry point takes an explicit root rank.
    pub needs_root: bool,
    /// The primitive whose volume model prices the ski-rental buy
    /// estimate (composite stages carry base primitives, but the buy
    /// decision must be priced at the composite's traffic volume).
    pub estimate_as: Primitive,
}

impl CollectiveSpec {
    fn single(name: &'static str, primitive: Primitive, needs_root: bool) -> Self {
        CollectiveSpec {
            name,
            stages: vec![StageSpec {
                primitive,
                fanout: Fanout::Single,
                shard: ShardRule::Full,
            }],
            relay: RelayPolicy::WaitAll,
            assemble: AssembleRule::Identity,
            queue: true,
            needs_root,
            estimate_as: primitive,
        }
    }

    /// AllReduce without relay control: waits for every worker.
    pub fn allreduce() -> Self {
        Self::single("allreduce", Primitive::AllReduce, false)
    }

    /// Reduce onto an automatically chosen root.
    pub fn reduce() -> Self {
        Self::single("reduce", Primitive::Reduce, false)
    }

    /// Broadcast from an explicit root.
    pub fn broadcast() -> Self {
        Self::single("broadcast", Primitive::Broadcast, true)
    }

    /// AlltoAll personalized exchange.
    pub fn alltoall() -> Self {
        Self::single("alltoall", Primitive::AllToAll, false)
    }

    /// AllReduce with adaptive relay control (paper Sec. IV-C).
    pub fn allreduce_adaptive() -> Self {
        CollectiveSpec {
            relay: RelayPolicy::Adaptive {
                missing_is_fault: true,
            },
            queue: false,
            ..Self::single("allreduce_adaptive", Primitive::AllReduce, false)
        }
    }

    /// AllGather: one Broadcast per worker, outputs concatenated in
    /// rank order (paper Sec. IV-D).
    pub fn allgather() -> Self {
        CollectiveSpec {
            name: "allgather",
            stages: vec![StageSpec {
                primitive: Primitive::Broadcast,
                fanout: Fanout::PerWorker,
                shard: ShardRule::Full,
            }],
            relay: RelayPolicy::Adaptive {
                missing_is_fault: false,
            },
            assemble: AssembleRule::ConcatSlots,
            queue: false,
            needs_root: false,
            estimate_as: Primitive::AllGather,
        }
    }

    /// ReduceScatter: one Reduce per worker over its shard (paper
    /// Sec. IV-D).
    pub fn reduce_scatter() -> Self {
        CollectiveSpec {
            name: "reduce_scatter",
            stages: vec![StageSpec {
                primitive: Primitive::Reduce,
                fanout: Fanout::PerWorker,
                shard: ShardRule::SplitEven,
            }],
            relay: RelayPolicy::Adaptive {
                missing_is_fault: false,
            },
            assemble: AssembleRule::OwnerShard,
            queue: false,
            needs_root: false,
            estimate_as: Primitive::ReduceScatter,
        }
    }

    /// Gather: every worker's tensor collected at the root, composed of
    /// per-worker point-to-point Broadcasts — a pure spec, no bespoke
    /// orchestration.
    pub fn gather() -> Self {
        CollectiveSpec {
            name: "gather",
            stages: vec![StageSpec {
                primitive: Primitive::Broadcast,
                fanout: Fanout::Pairwise {
                    worker_is_root: true,
                },
                shard: ShardRule::Full,
            }],
            relay: RelayPolicy::WaitAll,
            assemble: AssembleRule::ConcatAtRoot,
            queue: false,
            needs_root: true,
            estimate_as: Primitive::AllGather,
        }
    }

    /// Scatter: the root's tensor split into per-worker shards, each
    /// delivered over a point-to-point Broadcast — a pure spec, no
    /// bespoke orchestration.
    pub fn scatter() -> Self {
        CollectiveSpec {
            name: "scatter",
            stages: vec![StageSpec {
                primitive: Primitive::Broadcast,
                fanout: Fanout::Pairwise {
                    worker_is_root: false,
                },
                shard: ShardRule::SplitEven,
            }],
            relay: RelayPolicy::WaitAll,
            assemble: AssembleRule::OwnerSlice,
            queue: false,
            needs_root: true,
            estimate_as: Primitive::Broadcast,
        }
    }

    /// Structural validity of the spec. The pipeline debug-asserts
    /// this; the built-in specs are valid by construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("a collective needs at least one stage".into());
        }
        if self.queue && (self.stages.len() != 1 || self.stages[0].fanout != Fanout::Single) {
            return Err("only single-stage single-fanout specs ride the work queue".into());
        }
        if matches!(self.relay, RelayPolicy::Adaptive { .. }) {
            if self.stages.len() != 1 {
                return Err("adaptive relay requires a single-stage spec".into());
            }
            if matches!(self.stages[0].fanout, Fanout::Pairwise { .. }) {
                return Err("pairwise fanout is wait-all only".into());
            }
        }
        for s in &self.stages {
            if matches!(s.fanout, Fanout::Pairwise { .. }) && !self.needs_root {
                return Err("pairwise fanout requires a root".into());
            }
            if s.shard == ShardRule::SplitEven && s.fanout == Fanout::Single {
                return Err("an even split needs a fanout with slots".into());
            }
        }
        match self.assemble {
            AssembleRule::ConcatAtRoot | AssembleRule::OwnerSlice if !self.needs_root => {
                Err("root-directed assembly requires a root".into())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_are_valid() {
        for spec in [
            CollectiveSpec::allreduce(),
            CollectiveSpec::reduce(),
            CollectiveSpec::broadcast(),
            CollectiveSpec::alltoall(),
            CollectiveSpec::allreduce_adaptive(),
            CollectiveSpec::allgather(),
            CollectiveSpec::reduce_scatter(),
            CollectiveSpec::gather(),
            CollectiveSpec::scatter(),
        ] {
            assert!(
                spec.validate().is_ok(),
                "{}: {:?}",
                spec.name,
                spec.validate()
            );
        }
    }

    #[test]
    fn queue_requires_single_fanout() {
        let spec = CollectiveSpec {
            queue: true,
            ..CollectiveSpec::allgather()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn adaptive_relay_rejects_multi_stage() {
        let mut spec = CollectiveSpec::allreduce_adaptive();
        spec.stages.push(spec.stages[0]);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn pairwise_fanout_requires_a_root() {
        let spec = CollectiveSpec {
            needs_root: false,
            ..CollectiveSpec::gather()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn split_even_needs_slots() {
        let mut spec = CollectiveSpec::allreduce();
        spec.stages[0].shard = ShardRule::SplitEven;
        assert!(spec.validate().is_err());
    }
}
