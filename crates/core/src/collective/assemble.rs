//! Output assembly: per-sub executor outputs → the collective's
//! result buffers, driven by the spec's [`AssembleRule`].

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;

use crate::collective::spec::AssembleRule;

/// Outputs of one executed sub-collective, tagged with its slot.
#[derive(Debug, Clone)]
pub struct SlotOutput {
    /// The worker whose data (or result) this slot carries.
    pub owner: Rank,
    /// Slot index in the rank-ordered worker list.
    pub slot: usize,
    /// Executor outputs of the sub-collective; `None` when the slot's
    /// owner was declared faulty and its sub never ran.
    pub outputs: Option<BTreeMap<Rank, Vec<f32>>>,
}

/// Assembles the final per-worker output buffers for a fanned-out
/// collective. `survivors` are the workers that still receive
/// outputs (faulty workers are dropped); `elems` is the per-slot f32
/// element count; `inputs` are the caller's original buffers (a slot
/// owner's own contribution never rides the wire back to it). Slots
/// whose sub was dropped by fault exclusion are zero-filled in
/// concatenating rules.
pub fn assemble(
    rule: AssembleRule,
    survivors: &[Rank],
    root: Option<Rank>,
    elems: usize,
    inputs: &BTreeMap<Rank, Vec<f32>>,
    slots: &[SlotOutput],
) -> BTreeMap<Rank, Vec<f32>> {
    let mut out: BTreeMap<Rank, Vec<f32>> = BTreeMap::new();
    match rule {
        AssembleRule::Identity => {
            for slot in slots {
                if let Some(m) = &slot.outputs {
                    for (r, buf) in m {
                        out.insert(*r, buf.clone());
                    }
                }
            }
            out.retain(|r, _| survivors.contains(r));
        }
        AssembleRule::ConcatSlots => {
            let width = slots.iter().map(|s| s.slot + 1).max().unwrap_or(0);
            for w in survivors {
                let mut buf = vec![0.0f32; elems * width];
                for slot in slots {
                    let src: Option<&Vec<f32>> = if *w == slot.owner {
                        inputs.get(w)
                    } else {
                        slot.outputs.as_ref().and_then(|m| m.get(w))
                    };
                    if let Some(src) = src {
                        buf[slot.slot * elems..(slot.slot + 1) * elems].copy_from_slice(src);
                    }
                }
                out.insert(*w, buf);
            }
        }
        AssembleRule::OwnerShard => {
            for slot in slots {
                if !survivors.contains(&slot.owner) {
                    continue;
                }
                if let Some(buf) = slot.outputs.as_ref().and_then(|m| m.get(&slot.owner)) {
                    out.insert(slot.owner, buf.clone());
                }
            }
        }
        AssembleRule::ConcatAtRoot => {
            let root = root.expect("validated: root-directed assembly has a root");
            let width = slots
                .iter()
                .map(|s| s.slot + 1)
                .max()
                .unwrap_or(0)
                .max(root_slot(survivors, root) + 1);
            let mut buf = vec![0.0f32; elems * width];
            if let Some(own) = inputs.get(&root) {
                let j = root_slot(survivors, root);
                buf[j * elems..(j + 1) * elems].copy_from_slice(own);
            }
            for slot in slots {
                if let Some(src) = slot.outputs.as_ref().and_then(|m| m.get(&root)) {
                    buf[slot.slot * elems..(slot.slot + 1) * elems].copy_from_slice(src);
                }
            }
            if survivors.contains(&root) {
                out.insert(root, buf);
            }
        }
        AssembleRule::OwnerSlice => {
            let root = root.expect("validated: root-directed assembly has a root");
            for slot in slots {
                if !survivors.contains(&slot.owner) {
                    continue;
                }
                if let Some(buf) = slot.outputs.as_ref().and_then(|m| m.get(&slot.owner)) {
                    out.insert(slot.owner, buf.clone());
                }
            }
            if survivors.contains(&root) {
                if let Some(own) = inputs.get(&root) {
                    let j = root_slot(survivors, root);
                    out.insert(root, own[j * elems..(j + 1) * elems].to_vec());
                }
            }
        }
    }
    out
}

/// The root's slot index: its position in the rank-ordered worker
/// list. Survivor lists stay rank-sorted, so position in `survivors`
/// matches the expansion-time slot as long as no fault dropped an
/// earlier rank (pairwise specs are wait-all, so their slot layout
/// never shifts mid-collective).
fn root_slot(survivors: &[Rank], root: Rank) -> usize {
    survivors.iter().position(|r| *r == root).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(owner: usize, idx: usize, outs: &[(usize, Vec<f32>)]) -> SlotOutput {
        SlotOutput {
            owner: Rank(owner),
            slot: idx,
            outputs: Some(outs.iter().map(|(r, b)| (Rank(*r), b.clone())).collect()),
        }
    }

    #[test]
    fn concat_slots_prefers_own_input() {
        let survivors = vec![Rank(0), Rank(1)];
        let inputs: BTreeMap<Rank, Vec<f32>> =
            [(Rank(0), vec![1.0, 1.0]), (Rank(1), vec![2.0, 2.0])].into();
        let slots = vec![
            slot(0, 0, &[(1, vec![1.0, 1.0])]),
            slot(1, 1, &[(0, vec![2.0, 2.0])]),
        ];
        let out = assemble(
            AssembleRule::ConcatSlots,
            &survivors,
            None,
            2,
            &inputs,
            &slots,
        );
        assert_eq!(out[&Rank(0)], vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(out[&Rank(1)], vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_at_root_fills_the_roots_own_slot() {
        let survivors = vec![Rank(0), Rank(1), Rank(2)];
        let inputs: BTreeMap<Rank, Vec<f32>> = [(Rank(1), vec![5.0])].into();
        let slots = vec![slot(0, 0, &[(1, vec![3.0])]), slot(2, 2, &[(1, vec![7.0])])];
        let out = assemble(
            AssembleRule::ConcatAtRoot,
            &survivors,
            Some(Rank(1)),
            1,
            &inputs,
            &slots,
        );
        assert_eq!(out.len(), 1, "only the root receives");
        assert_eq!(out[&Rank(1)], vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn owner_shard_drops_faulty_owners() {
        let survivors = vec![Rank(0)];
        let slots = vec![
            slot(0, 0, &[(0, vec![1.0])]),
            SlotOutput {
                owner: Rank(1),
                slot: 1,
                outputs: None,
            },
        ];
        let out = assemble(
            AssembleRule::OwnerShard,
            &survivors,
            None,
            1,
            &BTreeMap::new(),
            &slots,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[&Rank(0)], vec![1.0]);
    }
}
