//! The staged pipeline every collective flows through:
//! **plan** (synthesis via the plan cache) → **relay** (ski-rental
//! decision) → **execute** (wait-all or phase-1/phase-2 partial) →
//! **assemble** (per-sub outputs → result buffers). The recovery loop
//! in [`crate::session`] wraps the whole pipeline, so stage DAGs get
//! the same retry / exclusion / reconstruction treatment as base
//! primitives, and every stage emits a telemetry span
//! (`collective.plan` / `collective.relay` / `collective.execute` /
//! `collective.assemble`) on the `collective` track.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::strategy::Strategy;

use crate::collective::assemble::{assemble, SlotOutput};
use crate::collective::plan::{expand, StagePlan};
use crate::collective::report::{ready_span, IterationReport};
use crate::collective::spec::{CollectiveSpec, Fanout, RelayPolicy};
use crate::error::AdapCCError;
use crate::executor::ExecutionRequest;
use crate::relay::Decision;
use crate::session::AdapCC;

/// A spec lowered onto the current worker set with every stage
/// strategy synthesized (or served from the memo / plan cache).
pub(super) struct Planned<'s> {
    pub(super) spec: &'s CollectiveSpec,
    pub(super) root: Option<Rank>,
    pub(super) tensor: ByteSize,
    pub(super) stages: Vec<StagePlan>,
    pub(super) strategies: Vec<Vec<Strategy>>,
}

/// The `Partial` decision's fields, bundled for the execution helpers.
/// The decision's relay *assignment* stays behind in the coordinator's
/// stats: execution derives the late set from the active set, so a
/// straggler's data arrives in phase 2 whether or not it was eligible
/// to be assigned as a relay.
pub(super) struct PartialPlan<'d> {
    pub(super) start: SimTime,
    pub(super) active: &'d [Rank],
}

/// What one execution path produced: the completion instant, either
/// ready-made outputs (single-strategy paths) or per-slot outputs for
/// the assemble stage, and any workers declared faulty.
pub(super) struct ExecOutcome {
    pub(super) finish: SimTime,
    pub(super) outputs: Option<BTreeMap<Rank, Vec<f32>>>,
    pub(super) slots: Vec<SlotOutput>,
    pub(super) faults: Vec<Rank>,
}

impl ExecOutcome {
    pub(super) fn done(finish: SimTime, outputs: BTreeMap<Rank, Vec<f32>>) -> Self {
        ExecOutcome {
            finish,
            outputs: Some(outputs),
            slots: Vec::new(),
            faults: Vec::new(),
        }
    }
}

fn decision_start(decision: &Decision) -> SimTime {
    match decision {
        Decision::WaitAll { start } => *start,
        Decision::Partial { start, .. } => *start,
    }
}

impl<'c> AdapCC<'c> {
    /// One attempt of `spec` through the staged pipeline. The recovery
    /// loop calls this repeatedly; errors (faults, invalid requests)
    /// surface untouched.
    pub(crate) fn run_collective(
        &mut self,
        spec: &CollectiveSpec,
        root: Option<Rank>,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        if let Some(r) = root {
            if !self.workers.contains(&r) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "root {r} is not part of the job (excluded or never admitted)"
                )));
            }
        }
        self.iteration += 1;
        self.maybe_reprofile();
        // The workers this collective spans: the active process group's
        // members (intersected with the live worker set), or the whole
        // job when unscoped.
        let scope_workers = self.scope_workers();
        if scope_workers.is_empty() {
            return Err(AdapCCError::InvalidRequest(
                "the collective's process group has no surviving members".to_string(),
            ));
        }
        // A worker admitted between the caller building its input map
        // and this attempt (elastic rejoin runs ahead of the recovery
        // loop) contributes a zero tensor until the trainer reshards —
        // indexing a missing rank deep in the executor would panic.
        let filled: Option<BTreeMap<Rank, Vec<f32>>> = inputs.and_then(|m| {
            if scope_workers.iter().all(|r| m.contains_key(r)) {
                return None;
            }
            let elems = (tensor.as_u64() / 4) as usize;
            let mut m2 = m.clone();
            for r in &scope_workers {
                m2.entry(*r).or_insert_with(|| vec![0.0; elems]);
            }
            Some(m2)
        });
        let inputs = match &filled {
            Some(m) => Some(m),
            None => inputs,
        };
        let tel = self.pipeline_telemetry();

        // Plan: lower the spec, synthesize every stage strategy.
        let planned = self.plan_collective(spec, root, tensor, &tel)?;
        let workers = scope_workers;

        // Relay: consult (or bypass) the ski-rental coordinator.
        let (decision, first, eff) = self.decide_relay(&planned, ready, &workers);
        let start = decision_start(&decision);
        tel.span(
            "collective.relay",
            "collective",
            first.min(start).as_secs(),
            start.as_secs(),
        );

        // Execute: wait-all (queued, cached or staged) or partial.
        let outcome = match &decision {
            Decision::WaitAll { start } => {
                if planned.spec.queue {
                    self.execute_queued(&planned, ready, inputs)?
                } else if matches!(
                    planned.spec.relay,
                    RelayPolicy::Adaptive {
                        missing_is_fault: true
                    }
                ) {
                    self.execute_adaptive_waitall(&planned, *start, ready, inputs)?
                } else {
                    self.execute_stages(&planned, ready, inputs)?
                }
            }
            Decision::Partial {
                start,
                ready: active,
                ..
            } => {
                let partial = PartialPlan {
                    start: *start,
                    active,
                };
                match planned.stages[0].fanout {
                    Fanout::Single => {
                        self.execute_partial_single(&planned, &partial, ready, inputs)?
                    }
                    _ => self.execute_partial_fanout(&planned, &partial, &eff, inputs)?,
                }
            }
        };
        tel.span(
            "collective.execute",
            "collective",
            start.min(outcome.finish).as_secs(),
            outcome.finish.as_secs(),
        );
        // Group-scoped attempts additionally land on a per-group lane
        // (and counter stream) so concurrent groups stay tellable apart
        // on the stitched timeline. World-scoped runs emit nothing here,
        // keeping historical traces byte-identical.
        if let Some(g) = &self.active_scope {
            let label = g.label();
            tel.group_span(
                &label,
                "collective.execute",
                start.min(outcome.finish).as_secs(),
                outcome.finish.as_secs(),
            );
            tel.add_group_counter(&label, "executions", 1.0);
        }

        // Assemble: per-slot outputs → the collective's result buffers.
        let outputs = match outcome.outputs {
            Some(outputs) => outputs,
            None => match inputs {
                Some(inp) => {
                    let survivors: Vec<Rank> = workers
                        .iter()
                        .copied()
                        .filter(|w| !outcome.faults.contains(w))
                        .collect();
                    let elems = planned
                        .stages
                        .last()
                        .and_then(|s| s.subs.first())
                        .map(|s| (s.tensor.as_u64() / 4) as usize)
                        .unwrap_or(0);
                    assemble(
                        planned.spec.assemble,
                        &survivors,
                        planned.root,
                        elems,
                        inp,
                        &outcome.slots,
                    )
                }
                None => BTreeMap::new(),
            },
        };
        tel.span(
            "collective.assemble",
            "collective",
            outcome.finish.as_secs(),
            outcome.finish.as_secs(),
        );

        Ok(IterationReport {
            finish: outcome.finish,
            comm_time: outcome.finish.duration_since(first),
            wait_time: start.duration_since(first.min(start)),
            decision,
            faults: outcome.faults,
            outputs,
        })
    }

    /// Lowers the spec and synthesizes every stage strategy through
    /// the session memo / plan cache. Stage `k > 0` single-fanout
    /// sub-plans with no explicit root inherit the previous stage's
    /// strategy root (Reduce → reverse Broadcast chaining). Under an
    /// active process group, whole-scope sub-plans adopt the group as
    /// their scope — so their strategy keys, fingerprints and synthesis
    /// participants are all group-local — while pairwise sub-plans keep
    /// their two-member pair scopes (a pair's strategy depends only on
    /// the pair, so it is legitimately shared across enclosing groups).
    fn plan_collective<'s>(
        &mut self,
        spec: &'s CollectiveSpec,
        root: Option<Rank>,
        tensor: ByteSize,
        tel: &adapcc_telemetry::Telemetry,
    ) -> Result<Planned<'s>, AdapCCError> {
        let workers = self.scope_workers();
        let mut stages = expand(spec, root, tensor, &workers)?;
        if let Some(g) = self.active_scope.clone() {
            for stage in &mut stages {
                for sub in &mut stage.subs {
                    if sub.scope.is_none() {
                        sub.scope = Some(g.clone());
                    }
                }
            }
        }
        let mut strategies: Vec<Vec<Strategy>> = Vec::with_capacity(stages.len());
        let mut memo_miss = false;
        for i in 0..stages.len() {
            if i > 0 && stages[i].fanout == Fanout::Single && stages[i].subs[0].root.is_none() {
                stages[i].subs[0].root = strategies[i - 1][0].subs[0].root;
            }
            let primitive = stages[i].primitive;
            let mut row = Vec::with_capacity(stages[i].subs.len());
            for sub in &stages[i].subs {
                let key = sub.key(primitive);
                memo_miss |= !self.strategies.contains_key(&key);
                row.push(self.strategy_for_key(&key).clone());
            }
            strategies.push(row);
        }
        // The plan span charges the modeled solver latency when any
        // strategy was freshly synthesized this iteration — the memo,
        // not the content-addressed plan cache, decides the width, so
        // same-seed runs stay byte-identical regardless of cache tier.
        let solve = if memo_miss {
            crate::reconstruct::modeled_solve_cost(workers.len()).as_secs()
        } else {
            0.0
        };
        tel.span("collective.plan", "collective", 0.0, solve);
        Ok(Planned {
            spec,
            root,
            tensor,
            stages,
            strategies,
        })
    }

    /// The relay stage. Returns the decision, the first ready instant
    /// (the report's clock origin) and the effective readiness map the
    /// composite partial path works from.
    fn decide_relay(
        &mut self,
        planned: &Planned<'_>,
        ready: &BTreeMap<Rank, SimTime>,
        workers: &[Rank],
    ) -> (Decision, SimTime, BTreeMap<Rank, SimTime>) {
        match planned.spec.relay {
            RelayPolicy::WaitAll => {
                let (first, last) = ready_span(ready, workers);
                (Decision::WaitAll { start: last }, first, ready.clone())
            }
            RelayPolicy::Adaptive {
                missing_is_fault: true,
            } => {
                // The adaptive AllReduce contract: absent workers are
                // fault candidates, the raw map goes to the
                // coordinator, and the buy estimate carries a measured
                // phase-2 broadcast unit.
                let strategy = &planned.strategies[0][0];
                let droot = strategy.subs[0]
                    .root
                    .expect("allreduce strategies are rooted");
                let est = self.buy_estimate(strategy, planned.tensor);
                let decision = self.coordinator.decide(workers, droot, ready, &est);
                let first = ready.values().copied().min().unwrap_or(SimTime::ZERO);
                (decision, first, ready.clone())
            }
            RelayPolicy::Adaptive {
                missing_is_fault: false,
            } => {
                // Composite contract: callers historically pass
                // partial or empty maps, so absent workers count as
                // ready at time zero rather than as faults.
                let eff: BTreeMap<Rank, SimTime> = workers
                    .iter()
                    .map(|w| (*w, ready.get(w).copied().unwrap_or(SimTime::ZERO)))
                    .collect();
                let stage = &planned.stages[0];
                let droot = match stage.fanout {
                    Fanout::Single => planned.strategies[0][0].subs[0]
                        .root
                        .expect("rooted strategy"),
                    _ => {
                        // The earliest-ready worker anchors the
                        // decision: its sub-collective certainly runs
                        // in phase 1.
                        let mut droot = workers[0];
                        let mut best = eff[&droot];
                        for w in workers {
                            if eff[w] < best {
                                best = eff[w];
                                droot = *w;
                            }
                        }
                        droot
                    }
                };
                let est = self.modeled_buy_estimate(
                    planned.spec.estimate_as,
                    &planned.strategies[0][0],
                    stage.subs[0].tensor,
                );
                let decision = self.coordinator.decide(workers, droot, &eff, &est);
                let first = eff.values().copied().min().unwrap_or(SimTime::ZERO);
                (decision, first, eff)
            }
        }
    }

    /// The plain wait-all path: the request rides the communicator's
    /// work queue exactly as the ML framework would push it (paper
    /// Fig. 4), and timing-only runs on a healthy fabric reuse the
    /// cached zero-skew execution time.
    fn execute_queued(
        &mut self,
        planned: &Planned<'_>,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<ExecOutcome, AdapCCError> {
        let primitive = planned.stages[0].primitive;
        let scope_workers = self.scope_workers();
        let tensor = planned.tensor;
        let work_id = self.communicator.submit(crate::communicator::WorkItem {
            id: 0,
            primitive,
            tensor,
            ready: ready.clone(),
            inputs: inputs.cloned(),
        });
        let item = self
            .communicator
            .take_work()
            .expect("the request just submitted");
        debug_assert_eq!(item.id, work_id);
        let workers = scope_workers;
        let strategy = planned.strategies[0][0].clone();
        let (_, last) = ready_span(ready, &workers);
        // Timing-only wait-all runs reuse the cached zero-skew
        // execution time: the collective itself is deterministic, the
        // slowest worker gates its start. With a fault schedule armed
        // the cache would mask faults, so every run goes through the
        // executor for real.
        let (finish, outputs) = if item.inputs.is_none() && self.fault_schedule.is_none() {
            let key = planned.stages[0].subs[0].key(primitive);
            let t_exec = self.cached_exec_secs(&key, &strategy);
            (last + SimDuration::from_secs(t_exec), BTreeMap::new())
        } else {
            let mut req = ExecutionRequest::timing(&strategy, tensor).with_ready(item.ready);
            if let Some(inp) = item.inputs {
                req = req.with_inputs(inp);
            }
            let batch = self.executor().try_execute(&[req])?;
            (
                batch.finish,
                batch
                    .requests
                    .into_iter()
                    .next()
                    .expect("one request")
                    .outputs,
            )
        };
        self.communicator.complete(crate::communicator::WorkResult {
            id: work_id,
            finish,
            outputs,
        });
        let result = self
            .communicator
            .fetch()
            .expect("the result just completed");
        debug_assert_eq!(result.id, work_id);
        Ok(ExecOutcome::done(result.finish, result.outputs))
    }

    /// Adaptive AllReduce whose decision came back `WaitAll`: cached
    /// zero-skew time on a healthy timing-only run, one full request
    /// otherwise.
    fn execute_adaptive_waitall(
        &mut self,
        planned: &Planned<'_>,
        start: SimTime,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<ExecOutcome, AdapCCError> {
        let strategy = planned.strategies[0][0].clone();
        let tensor = planned.tensor;
        if inputs.is_none() && self.fault_schedule.is_none() {
            let key = planned.stages[0].subs[0].key(planned.stages[0].primitive);
            let t_exec = self.cached_exec_secs(&key, &strategy);
            let (_, last) = ready_span(ready, &self.scope_workers());
            let finish = last.max(start) + SimDuration::from_secs(t_exec);
            return Ok(ExecOutcome::done(finish, BTreeMap::new()));
        }
        let mut req = ExecutionRequest::timing(&strategy, tensor).with_ready(ready.clone());
        if let Some(inp) = inputs {
            req = req.with_inputs(inp.clone());
        }
        let batch = self.executor().try_execute(&[req])?;
        Ok(ExecOutcome::done(
            batch.finish,
            batch.requests.into_iter().next().expect("one").outputs,
        ))
    }

    /// Wait-all execution of a stage DAG: each stage's sub-collectives
    /// run as one batch; stage `k + 1` starts when stage `k` drains
    /// and consumes its merged outputs.
    fn execute_stages(
        &mut self,
        planned: &Planned<'_>,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<&BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<ExecOutcome, AdapCCError> {
        let workers = self.scope_workers();
        let (_, last) = ready_span(ready, &workers);
        let mut stage_ready: BTreeMap<Rank, SimTime> = ready.clone();
        let mut stage_inputs: Option<BTreeMap<Rank, Vec<f32>>> = inputs.cloned();
        let mut finish = last;
        let mut slots: Vec<SlotOutput> = Vec::new();
        for (i, stage) in planned.stages.iter().enumerate() {
            let requests: Vec<ExecutionRequest<'_>> = stage
                .subs
                .iter()
                .zip(&planned.strategies[i])
                .map(|(sub, s)| {
                    let mut req =
                        ExecutionRequest::timing(s, sub.tensor).with_ready(stage_ready.clone());
                    if let Some(inp) = &stage_inputs {
                        req = req.with_inputs(stage.sub_inputs(sub, inp, planned.root));
                    }
                    req
                })
                .collect();
            if requests.is_empty() {
                // A pairwise stage over a single worker has nothing to
                // move; assembly serves the root from its own input.
                continue;
            }
            let batch = self.executor().try_execute(&requests)?;
            finish = batch.finish;
            slots = stage
                .subs
                .iter()
                .zip(&batch.requests)
                .map(|(sub, r)| SlotOutput {
                    owner: sub.owner.or(sub.root).unwrap_or(workers[0]),
                    slot: sub.slot,
                    outputs: Some(r.outputs.clone()),
                })
                .collect();
            if i + 1 < planned.stages.len() {
                stage_ready = workers.iter().map(|w| (*w, finish)).collect();
                if stage_inputs.is_some() {
                    let mut merged: BTreeMap<Rank, Vec<f32>> = BTreeMap::new();
                    for r in &batch.requests {
                        for (k, v) in &r.outputs {
                            merged.insert(*k, v.clone());
                        }
                    }
                    stage_inputs = Some(merged);
                }
            }
        }
        Ok(ExecOutcome {
            finish,
            outputs: None,
            slots,
            faults: Vec::new(),
        })
    }
}
