//! The per-iteration result every collective entry point returns.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::{SimDuration, SimTime};

use crate::relay::Decision;

/// Result of one collective iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// What the coordinator decided. Plain wait-all entry points
    /// always report `WaitAll`; adaptive-relay specs — including the
    /// composite `allgather` / `reduce_scatter`, which consult the
    /// coordinator since the pipeline refactor — may report `Partial`.
    pub decision: Decision,
    /// Completion instant on the iteration clock (time 0 = iteration
    /// start; worker ready times are offsets on that clock).
    pub finish: SimTime,
    /// `finish` minus the first worker's ready time: the paper's
    /// "communication time" including waiting.
    pub comm_time: SimDuration,
    /// How long the fastest worker waited before communication began.
    pub wait_time: SimDuration,
    /// Workers declared faulty this iteration (excluded from training;
    /// the caller re-shards its data loader).
    pub faults: Vec<Rank>,
    /// Output tensors (present when inputs were given).
    pub outputs: BTreeMap<Rank, Vec<f32>>,
}

/// Earliest and latest ready instants over the worker set (workers
/// missing from the map count as ready at time zero).
pub(crate) fn ready_span(ready: &BTreeMap<Rank, SimTime>, workers: &[Rank]) -> (SimTime, SimTime) {
    let mut first = SimTime::ZERO;
    let mut last = SimTime::ZERO;
    let mut any = false;
    for w in workers {
        let t = ready.get(w).copied().unwrap_or(SimTime::ZERO);
        if !any {
            first = t;
            last = t;
            any = true;
        } else {
            if t < first {
                first = t;
            }
            last = last.max(t);
        }
    }
    (first, last)
}
