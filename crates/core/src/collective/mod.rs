//! The collective descriptor and its staged pipeline.
//!
//! Every public collective entry point on [`crate::session::AdapCC`]
//! is a thin wrapper: build (or reuse) a [`CollectiveSpec`], hand it
//! to the pipeline. The spec is pure data — primitive stages, a
//! per-stage root/shard rule, a relay policy and an output-assembly
//! rule — and the pipeline is the single code path that plans,
//! consults the relay coordinator, executes, assembles and reports.
//! Adding a collective means writing a spec (see
//! [`CollectiveSpec::gather`] / [`CollectiveSpec::scatter`]), not a
//! new orchestration body.
//!
//! Module layout:
//!
//! - [`spec`] — the descriptor grammar and the built-in specs
//! - [`plan`] — pure lowering of a spec onto a worker set
//! - [`assemble`] — per-sub outputs → the collective's result buffers
//! - [`report`] — the [`IterationReport`] every entry point returns
//! - `pipeline` — the staged plan → relay → execute → assemble →
//!   report orchestration (private; reached via the session entry
//!   points)
//! - `partial` — the phase-1 / phase-2 execution paths behind a
//!   `Partial` relay decision (private)

pub mod assemble;
mod partial;
mod pipeline;
pub mod plan;
pub mod report;
pub mod spec;

pub use report::IterationReport;
pub use spec::{AssembleRule, CollectiveSpec, Fanout, RelayPolicy, ShardRule, StageSpec};
