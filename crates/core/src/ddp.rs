//! The DDP communication hook (paper Sec. VI-A: "we also provide a
//! communication hook for PyTorch DDP").
//!
//! PyTorch's DistributedDataParallel does not AllReduce one giant
//! gradient tensor: it packs parameters into fixed-size *buckets* and
//! launches one collective per bucket as soon as the backward pass has
//! produced that bucket's gradients, overlapping communication with
//! the remaining backward computation. This module reproduces that
//! contract on top of [`AdapCC`]: callers describe the bucket layout
//! and per-bucket gradient-ready times (earlier layers' gradients are
//! ready later — backward runs output-to-input), and the hook issues
//! one AllReduce per bucket on the shared fabric, returning the
//! per-bucket and overall completion times.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::strategy::Strategy;

use crate::executor::{ExecutionRequest, Executor};
use crate::session::AdapCC;

/// The default DDP bucket cap (PyTorch's `bucket_cap_mb` is 25 MB).
pub fn default_bucket_cap() -> ByteSize {
    ByteSize::from_mib(25)
}

/// The bucket layout of one model's gradients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketLayout {
    sizes: Vec<ByteSize>,
}

impl BucketLayout {
    /// Splits a model of `model_size` bytes into buckets of at most
    /// `cap` (the last bucket holds the remainder), in backward order:
    /// bucket 0 is the *last* layer's gradients, ready first.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or not f32-aligned.
    pub fn from_model(model_size: ByteSize, cap: ByteSize) -> Self {
        assert!(!model_size.is_zero() && !cap.is_zero(), "empty layout");
        assert_eq!(model_size.as_u64() % 4, 0, "model must be f32-aligned");
        assert_eq!(cap.as_u64() % 4, 0, "cap must be f32-aligned");
        let mut sizes = Vec::new();
        let mut left = model_size.as_u64();
        while left > 0 {
            let take = left.min(cap.as_u64());
            sizes.push(ByteSize::from_bytes(take));
            left -= take;
        }
        BucketLayout { sizes }
    }

    /// Explicit per-bucket sizes (backward order).
    ///
    /// # Panics
    ///
    /// Panics if any bucket is zero-sized or unaligned.
    pub fn from_sizes(sizes: Vec<ByteSize>) -> Self {
        assert!(!sizes.is_empty(), "empty layout");
        for s in &sizes {
            assert!(!s.is_zero() && s.as_u64() % 4 == 0, "bad bucket size {s}");
        }
        BucketLayout { sizes }
    }

    /// Bucket sizes in backward (ready) order.
    pub fn sizes(&self) -> &[ByteSize] {
        &self.sizes
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the layout is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Total gradient bytes.
    pub fn total(&self) -> ByteSize {
        self.sizes.iter().fold(ByteSize::ZERO, |acc, s| acc + *s)
    }

    /// Evenly spreads each worker's backward pass over its buckets:
    /// bucket `i` of worker `w` becomes ready at
    /// `backward_end[w] * (i + 1) / n`, modelling gradients streaming
    /// out as backward progresses.
    pub fn ready_schedule(
        &self,
        backward_end: &BTreeMap<Rank, SimTime>,
    ) -> Vec<BTreeMap<Rank, SimTime>> {
        let n = self.sizes.len() as f64;
        (0..self.sizes.len())
            .map(|i| {
                backward_end
                    .iter()
                    .map(|(r, t)| {
                        let frac = (i as f64 + 1.0) / n;
                        (*r, SimTime::from_secs(t.as_secs() * frac))
                    })
                    .collect()
            })
            .collect()
    }
}

/// Result of one bucketed (DDP-hook) AllReduce round.
#[derive(Debug, Clone)]
pub struct DdpRoundReport {
    /// Completion instant of each bucket's AllReduce, bucket order.
    pub bucket_finish: Vec<SimTime>,
    /// When the whole gradient set was synchronized.
    pub finish: SimTime,
    /// Communication not hidden behind backward: `finish` minus the
    /// slowest worker's backward end.
    pub exposed_comm: SimDuration,
}

/// The DDP communication hook: per-bucket AllReduce over the session's
/// synthesized strategies, all buckets contending on one fabric like
/// the real hook's in-flight collectives do.
#[derive(Debug)]
pub struct DdpHook {
    layout: BucketLayout,
}

impl DdpHook {
    /// A hook over a bucket layout.
    pub fn new(layout: BucketLayout) -> Self {
        DdpHook { layout }
    }

    /// The layout.
    pub fn layout(&self) -> &BucketLayout {
        &self.layout
    }

    /// Runs one backward-overlapped gradient synchronization round:
    /// bucket `i` starts when each worker's backward has produced it
    /// (see [`BucketLayout::ready_schedule`]).
    pub fn round(
        &self,
        session: &mut AdapCC<'_>,
        backward_end: &BTreeMap<Rank, SimTime>,
    ) -> DdpRoundReport {
        let schedules = self.layout.ready_schedule(backward_end);
        // One strategy per distinct bucket size (cached in the session).
        let strategies: Vec<Strategy> = self
            .layout
            .sizes
            .iter()
            .map(|s| session.strategy_for(Primitive::AllReduce, *s).clone())
            .collect();
        let requests: Vec<ExecutionRequest<'_>> = strategies
            .iter()
            .zip(self.layout.sizes.iter())
            .zip(&schedules)
            .map(|((strategy, size), ready)| {
                ExecutionRequest::timing(strategy, *size).with_ready(ready.clone())
            })
            .collect();
        let exec = Executor::new(session.cluster(), session.topology())
            .with_capacity_factors(session.fabric_factors());
        let batch = exec.execute(&requests);
        let bucket_finish: Vec<SimTime> = batch.requests.iter().map(|r| r.finish).collect();
        let backward_last = backward_end
            .values()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        DdpRoundReport {
            finish: batch.finish,
            exposed_comm: batch.finish.duration_since(backward_last.min(batch.finish)),
            bucket_finish,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::InitOptions;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_synth::solver::SynthConfig;

    fn quick_session(cluster: &Cluster) -> AdapCC<'_> {
        let mut cc = AdapCC::init(
            cluster,
            InitOptions {
                synth: SynthConfig {
                    anneal_iters: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        cc.setup();
        cc
    }

    #[test]
    fn layout_covers_the_model() {
        let layout = BucketLayout::from_model(ByteSize::from_mib(208), default_bucket_cap());
        assert_eq!(layout.len(), 9, "208 MiB / 25 MiB cap");
        assert_eq!(layout.total(), ByteSize::from_mib(208));
        // Last bucket is the remainder.
        assert_eq!(*layout.sizes().last().unwrap(), ByteSize::from_mib(8));
    }

    #[test]
    fn ready_schedule_is_monotone_per_worker() {
        let layout = BucketLayout::from_model(ByteSize::from_mib(100), default_bucket_cap());
        let mut backward = BTreeMap::new();
        backward.insert(Rank(0), SimTime::from_secs(0.2));
        backward.insert(Rank(1), SimTime::from_secs(0.3));
        let sched = layout.ready_schedule(&backward);
        assert_eq!(sched.len(), layout.len());
        for w in [Rank(0), Rank(1)] {
            for pair in sched.windows(2) {
                assert!(pair[0][&w] <= pair[1][&w]);
            }
        }
        // The final bucket lands exactly at backward end.
        assert_eq!(sched.last().unwrap()[&Rank(1)], SimTime::from_secs(0.3));
    }

    #[test]
    fn bucketed_round_overlaps_with_backward() {
        let cluster = Cluster::homogeneous_a100(2);
        let mut cc = quick_session(&cluster);
        let layout = BucketLayout::from_model(ByteSize::from_mib(200), default_bucket_cap());
        let hook = DdpHook::new(layout);
        let backward: BTreeMap<Rank, SimTime> = cc
            .workers()
            .iter()
            .map(|r| (*r, SimTime::from_secs(0.25)))
            .collect();
        let round = hook.round(&mut cc, &backward);
        // Monolithic synchronization of the same model, started only
        // when backward finished.
        let mono = cc
            .allreduce(ByteSize::from_mib(200), &backward, None)
            .expect("healthy fabric");
        assert!(
            round.finish < mono.finish,
            "bucketed {} vs monolithic {}",
            round.finish,
            mono.finish
        );
        // Early buckets completed before backward even ended.
        assert!(round.bucket_finish[0].as_secs() < 0.25);
        assert!(round.exposed_comm.as_secs() < mono.comm_time.as_secs());
    }

    #[test]
    #[should_panic(expected = "f32-aligned")]
    fn unaligned_model_rejected() {
        let _ = BucketLayout::from_model(ByteSize::from_bytes(1001), default_bucket_cap());
    }
}
