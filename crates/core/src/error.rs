//! Typed errors for the fault paths.
//!
//! A fabric fault used to surface as a panic (or a silent hang) deep in
//! the executor; with fault injection in the simulator those paths are
//! reachable, so every public collective now returns a `Result` whose
//! error side carries a *classified* [`FaultReport`] — which hop stalled
//! or aborted, over which physical links, implicating which ranks. The
//! session's recovery loop consumes the classification; callers that
//! opt out of fault handling still get a typed error instead of a hang.

use std::error::Error;
use std::fmt;

use adapcc_simnet::cluster::{LinkId, Rank};
use adapcc_simnet::time::SimTime;

/// How an executor-level fault surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A chunk transfer blew through its per-hop deadline: a link on
    /// the hop is down or severely degraded. Typically transient (a
    /// flap heals, a degradation window closes), so worth retrying.
    HopTimeout,
    /// The transport aborted a transfer over a permanently failed link
    /// (worker crash or NIC failure). Never heals; recovery must
    /// exclude the dead component and reconstruct the graph.
    TransferAborted,
    /// The run quiesced with unfinished sink chunks and nothing in
    /// flight: an upstream dependency never materialized. Treated as a
    /// stall (the fault-injection analogue of a distributed hang).
    Incomplete,
}

impl FaultKind {
    /// True when the fault indicates permanently removed capacity, so
    /// retrying the same graph cannot succeed.
    pub fn is_permanent(&self) -> bool {
        matches!(self, FaultKind::TransferAborted)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::HopTimeout => write!(f, "hop timeout"),
            FaultKind::TransferAborted => write!(f, "transfer aborted"),
            FaultKind::Incomplete => write!(f, "incomplete run"),
        }
    }
}

/// A classified executor fault: what stalled or aborted, where, when.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// How the fault surfaced.
    pub kind: FaultKind,
    /// Detection instant on the iteration clock (time 0 = iteration
    /// start; add the session clock for absolute time).
    pub at: SimTime,
    /// Physical links crossed by the faulted hop — the health monitor's
    /// first suspects.
    pub links: Vec<LinkId>,
    /// Ranks whose data path is implicated: the endpoints of the
    /// faulted logical hop, expanded to every rank of an instance when
    /// a NIC is an endpoint. A superset of the truly dead ranks; the
    /// session narrows it with health checks before excluding anyone.
    pub suspects: Vec<Rank>,
    /// Human-readable description of the faulted hop.
    pub hop: String,
}

impl FaultReport {
    /// True when retrying the same graph cannot succeed (see
    /// [`FaultKind::is_permanent`]).
    pub fn is_permanent(&self) -> bool {
        self.kind.is_permanent()
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} on {}", self.kind, self.at, self.hop)?;
        if !self.suspects.is_empty() {
            write!(f, " (suspects: ")?;
            for (i, r) in self.suspects.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Condensed view of the session's recovery timeline, attached to
/// terminal recovery errors so the caller sees what the loop tried
/// before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySummary {
    /// Faults the executor classified this session.
    pub detections: usize,
    /// Backoff-and-retry attempts made.
    pub retries: usize,
    /// Workers excluded through the reconstruction path.
    pub exclusions: usize,
}

impl fmt::Display for RecoverySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detection(s), {} retry(ies), {} exclusion(s)",
            self.detections, self.retries, self.exclusions
        )
    }
}

/// Error type of the public collectives.
#[derive(Debug, Clone, PartialEq)]
pub enum AdapCCError {
    /// A fabric fault aborted the collective and recovery did not (or
    /// could not) resolve it.
    Fault(FaultReport),
    /// Transient-fault retries were exhausted without the fabric
    /// healing or a dead component to exclude.
    RetriesExhausted {
        /// Retry attempts made before giving up.
        attempts: usize,
        /// The fault observed on the last attempt.
        last: FaultReport,
        /// What the recovery loop tried this session.
        recovery: RecoverySummary,
    },
    /// Excluding the dead workers would leave too few survivors to run
    /// a collective.
    InsufficientSurvivors {
        /// Workers that would remain.
        survivors: usize,
        /// What the recovery loop tried this session.
        recovery: RecoverySummary,
    },
    /// The request itself is malformed (misaligned tensor, wrong input
    /// buffer length, dead root, ...).
    InvalidRequest(String),
}

impl fmt::Display for AdapCCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdapCCError::Fault(r) => write!(f, "unrecovered fault: {r}"),
            AdapCCError::RetriesExhausted {
                attempts,
                last,
                recovery,
            } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempt(s): {last} [{recovery}]"
                )
            }
            AdapCCError::InsufficientSurvivors {
                survivors,
                recovery,
            } => {
                write!(
                    f,
                    "only {survivors} worker(s) would survive exclusion [{recovery}]"
                )
            }
            AdapCCError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl Error for AdapCCError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanence_follows_kind() {
        assert!(FaultKind::TransferAborted.is_permanent());
        assert!(!FaultKind::HopTimeout.is_permanent());
        assert!(!FaultKind::Incomplete.is_permanent());
    }

    #[test]
    fn display_names_the_hop_and_suspects() {
        let r = FaultReport {
            kind: FaultKind::TransferAborted,
            at: SimTime::from_millis(3.0),
            links: vec![LinkId(7)],
            suspects: vec![Rank(1), Rank(2)],
            hop: "gpu1->nic0 chunk 4".into(),
        };
        let s = format!("{r}");
        assert!(s.contains("transfer aborted"), "{s}");
        assert!(s.contains("gpu1->nic0"), "{s}");
        assert!(
            s.contains("rank1") || s.contains("Rank(1)") || s.contains('1'),
            "{s}"
        );
        let e = AdapCCError::RetriesExhausted {
            attempts: 3,
            last: r,
            recovery: RecoverySummary {
                detections: 4,
                retries: 3,
                exclusions: 0,
            },
        };
        let s = format!("{e}");
        assert!(s.contains("3 attempt"), "{s}");
        assert!(s.contains("4 detection(s)"), "{s}");
        assert!(s.contains("3 retry(ies)"), "{s}");
    }
}
