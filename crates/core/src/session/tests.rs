use std::collections::BTreeMap;

use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::faults::{nic_links, Fault, FaultSchedule};
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::SynthConfig;

use crate::collective::spec::{
    AssembleRule, CollectiveSpec, Fanout, RelayPolicy, ShardRule, StageSpec,
};
use crate::error::AdapCCError;
use crate::relay::{Decision, RelayConfig};
use crate::session::{AdapCC, InitOptions, RecoveryEvent};

fn inputs_for(workers: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
    workers
        .iter()
        .map(|r| {
            (
                *r,
                (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect(),
            )
        })
        .collect()
}

fn quick_options() -> InitOptions {
    InitOptions {
        synth: SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Options with a generous fault horizon, so deliberately late
/// test workers are relayed rather than declared dead.
fn patient_options() -> InitOptions {
    InitOptions {
        relay: RelayConfig {
            fault_floor: SimDuration::from_millis(500.0),
            ..Default::default()
        },
        ..quick_options()
    }
}

#[test]
fn end_to_end_allreduce_matches_sum() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_kib(64);
    let elems = 64 * 1024 / 4;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let report = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs.clone()))
        .expect("healthy fabric");
    for w in &workers {
        let out = &report.outputs[w];
        for i in [0usize, 17, elems - 1] {
            let expect: f32 = workers.iter().map(|r| inputs[r][i]).sum();
            assert!((out[i] - expect).abs() < 1e-3);
        }
    }
}

#[test]
fn adaptive_allreduce_waits_for_small_skew() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_mib(16);
    let mut ready = BTreeMap::new();
    for r in cc.workers().to_vec() {
        ready.insert(r, SimTime::from_secs(r.0 as f64 * 1e-5));
    }
    let report = cc
        .allreduce_adaptive(tensor, &ready, None)
        .expect("healthy fabric");
    assert!(matches!(report.decision, Decision::WaitAll { .. }));
    assert!(report.faults.is_empty());
}

#[test]
fn adaptive_allreduce_proceeds_past_heavy_straggler() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, patient_options());
    cc.setup();
    let tensor = ByteSize::from_mib(16);
    let workers = cc.workers().to_vec();
    let mut ready = BTreeMap::new();
    for r in &workers {
        ready.insert(*r, SimTime::ZERO);
    }
    // One worker 60 ms late (not the root): far beyond the
    // break-even point but inside the fault horizon.
    let strategy_root = {
        let s = cc.strategy_for(Primitive::AllReduce, tensor);
        s.subs[0].root.unwrap()
    };
    let straggler = workers
        .iter()
        .copied()
        .find(|r| *r != strategy_root)
        .unwrap();
    ready.insert(straggler, SimTime::from_secs(0.06));
    let report = cc
        .allreduce_adaptive(tensor, &ready, None)
        .expect("healthy fabric");
    match &report.decision {
        Decision::Partial { relays, start, .. } => {
            assert_eq!(relays, &vec![straggler]);
            // Phase 1 starts well before the straggler is ready.
            assert!(start.as_secs() < 0.06, "start {start}");
        }
        other => panic!("expected partial, got {other:?}"),
    }
    // Phase 2 needs the late tensor, so completion follows it.
    assert!(
        report.finish.as_secs() > 0.06,
        "phase2 needs the late tensor"
    );
    assert!(report.faults.is_empty(), "{:?}", report.faults);
}

#[test]
fn adaptive_partial_preserves_the_sum() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, patient_options());
    cc.setup();
    let tensor = ByteSize::from_kib(64);
    let elems = 64 * 1024 / 4;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let mut ready = BTreeMap::new();
    for r in &workers {
        ready.insert(*r, SimTime::ZERO);
    }
    let strategy_root = {
        let s = cc.strategy_for(Primitive::AllReduce, tensor);
        s.subs[0].root.unwrap()
    };
    let straggler = workers
        .iter()
        .copied()
        .find(|r| *r != strategy_root)
        .unwrap();
    ready.insert(straggler, SimTime::from_secs(0.04));
    let report = cc
        .allreduce_adaptive(tensor, &ready, Some(inputs.clone()))
        .expect("healthy fabric");
    assert!(matches!(report.decision, Decision::Partial { .. }));
    // Two-phase aggregation is numerically a full allreduce.
    for w in &workers {
        let out = &report.outputs[w];
        for i in [0usize, 101, elems - 1] {
            let expect: f32 = workers.iter().map(|r| inputs[r][i]).sum();
            assert!((out[i] - expect).abs() < 1e-3, "elem {i}");
        }
    }
}

#[test]
fn missing_worker_is_declared_faulty_and_excludable() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_mib(4);
    let workers = cc.workers().to_vec();
    let mut ready = BTreeMap::new();
    for r in &workers {
        ready.insert(*r, SimTime::ZERO);
    }
    // Rank 7 never reports.
    ready.remove(&Rank(7));
    let report = cc
        .allreduce_adaptive(tensor, &ready, None)
        .expect("healthy fabric");
    assert_eq!(report.faults, vec![Rank(7)]);
    cc.exclude_workers(&report.faults);
    assert_eq!(cc.workers().len(), 7);
    // Training continues among survivors.
    let again = cc
        .allreduce(tensor, &BTreeMap::new(), None)
        .expect("healthy fabric");
    assert!(again.finish.as_secs() > 0.0);
}

#[test]
fn allgather_concatenates_rank_order() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_kib(16);
    let elems = 16 * 1024 / 4;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let report = cc
        .allgather(tensor, &BTreeMap::new(), Some(inputs.clone()))
        .expect("healthy fabric");
    for w in &workers {
        let out = &report.outputs[w];
        assert_eq!(out.len(), elems * workers.len());
        for (j, root) in workers.iter().enumerate() {
            assert_eq!(
                &out[j * elems..(j + 1) * elems],
                &inputs[root][..],
                "slot {j}"
            );
        }
    }
}

#[test]
fn reduce_scatter_shards_the_aggregate() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let workers = cc.workers().to_vec();
    let n = workers.len();
    let shard_elems = 1024usize;
    let tensor = ByteSize::from_bytes((n * shard_elems * 4) as u64);
    let inputs = inputs_for(&workers, n * shard_elems);
    let report = cc
        .reduce_scatter(tensor, &BTreeMap::new(), Some(inputs.clone()))
        .expect("healthy fabric");
    for (j, w) in workers.iter().enumerate() {
        let out = &report.outputs[w];
        assert_eq!(out.len(), shard_elems);
        for i in [0usize, shard_elems - 1] {
            let expect: f32 = workers.iter().map(|r| inputs[r][j * shard_elems + i]).sum();
            assert!((out[i] - expect).abs() < 1e-3);
        }
    }
}

#[test]
fn gather_collects_at_root() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_kib(4);
    let elems = 4 * 1024 / 4;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let root = workers[1];
    let report = cc
        .gather(root, tensor, &BTreeMap::new(), Some(inputs.clone()))
        .expect("healthy fabric");
    assert_eq!(report.outputs.len(), 1, "only the root receives");
    let out = &report.outputs[&root];
    assert_eq!(out.len(), elems * workers.len());
    for (j, w) in workers.iter().enumerate() {
        assert_eq!(&out[j * elems..(j + 1) * elems], &inputs[w][..], "slot {j}");
    }
    assert!(report.finish.as_secs() > 0.0);
}

#[test]
fn scatter_delivers_shards() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let workers = cc.workers().to_vec();
    let n = workers.len();
    let shard_elems = 512usize;
    let tensor = ByteSize::from_bytes((n * shard_elems * 4) as u64);
    let root = workers[0];
    let root_buf: Vec<f32> = (0..n * shard_elems).map(|i| (i % 17) as f32).collect();
    let inputs: BTreeMap<Rank, Vec<f32>> = [(root, root_buf.clone())].into();
    let report = cc
        .scatter(root, tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    for (j, w) in workers.iter().enumerate() {
        let out = &report.outputs[w];
        assert_eq!(out.len(), shard_elems, "worker {w}");
        assert_eq!(
            out[..],
            root_buf[j * shard_elems..(j + 1) * shard_elems],
            "slot {j}"
        );
    }
    // An indivisible tensor is rejected up front.
    let err = cc
        .scatter(
            root,
            ByteSize::from_bytes(4 * n as u64 + 4),
            &BTreeMap::new(),
            None,
        )
        .expect_err("indivisible");
    assert!(matches!(err, AdapCCError::InvalidRequest(_)), "{err}");
}

#[test]
fn custom_two_stage_spec_runs_through_the_pipeline() {
    // AllReduce spelled as its own composition — Reduce then reverse
    // Broadcast chained through the stage DAG — must aggregate like
    // the built-in single-stage spec.
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let spec = CollectiveSpec {
        name: "allreduce_two_stage",
        stages: vec![
            StageSpec {
                primitive: Primitive::Reduce,
                fanout: Fanout::Single,
                shard: ShardRule::Full,
            },
            StageSpec {
                primitive: Primitive::Broadcast,
                fanout: Fanout::Single,
                shard: ShardRule::Full,
            },
        ],
        relay: RelayPolicy::WaitAll,
        assemble: AssembleRule::Identity,
        queue: false,
        needs_root: false,
        estimate_as: Primitive::AllReduce,
    };
    assert!(spec.validate().is_ok());
    let tensor = ByteSize::from_kib(16);
    let elems = 16 * 1024 / 4;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let report = cc
        .with_recovery(|cc| cc.run_collective(&spec, None, tensor, &BTreeMap::new(), Some(&inputs)))
        .expect("healthy fabric");
    assert!(!report.outputs.is_empty());
    for (w, out) in &report.outputs {
        for i in [0usize, 33, elems - 1] {
            let expect: f32 = workers.iter().map(|r| inputs[r][i]).sum();
            assert!((out[i] - expect).abs() < 1e-3, "worker {w} elem {i}");
        }
    }
}

#[test]
fn reprofile_keeps_graph_when_stable_and_rebuilds_on_change() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let tensor = ByteSize::from_mib(8);
    let _ = cc.strategy_for(Primitive::AllReduce, tensor);
    let stable = cc.reprofile();
    assert!(!stable.changed, "no change expected on a quiet fabric");
    assert_eq!(stable.solving, SimDuration::ZERO);
    // Halve one NIC: re-synthesis must trigger.
    let eg = c.nic_egress_link(adapcc_simnet::cluster::InstanceId(0));
    cc.set_fabric_factors(vec![(eg, 0.5)]);
    let shifted = cc.reprofile();
    assert!(shifted.changed);
    assert!(shifted.total() > stable.total());
}

#[test]
fn periodic_profiling_fires_on_schedule() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    cc.set_profile_period(3);
    let tensor = ByteSize::from_mib(4);
    for _ in 0..2 {
        let _ = cc
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
    }
    assert!(cc.last_reconstruct().is_none(), "not due yet");
    let _ = cc
        .allreduce(tensor, &BTreeMap::new(), None)
        .expect("healthy fabric");
    let r = cc.last_reconstruct().expect("third iteration triggers");
    assert!(r.profiling.as_secs() > 0.0);
    assert!(!r.changed, "quiet fabric: no re-synthesis");
}

#[test]
fn elastic_scale_out_admits_new_instance() {
    let c = Cluster::homogeneous_a100(3);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    // Start with the first two instances only.
    cc.set_workers((0..8).map(Rank).collect());
    let tensor = ByteSize::from_kib(64);
    let elems = 16 * 1024;
    let inputs8 = inputs_for(cc.workers(), elems);
    let before = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs8))
        .expect("healthy fabric");
    assert_eq!(before.outputs.len(), 8);
    // Instance 2 joins.
    let scale = cc
        .add_workers(&(8..12).map(Rank).collect::<Vec<_>>())
        .expect("valid scale-out");
    assert!(
        scale.detection > SimDuration::ZERO,
        "new instance must be detected"
    );
    assert_eq!(cc.workers().len(), 12);
    let inputs12 = inputs_for(cc.workers(), elems);
    let after = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs12.clone()))
        .expect("healthy fabric");
    assert_eq!(after.outputs.len(), 12);
    let expect: f32 = cc.workers().iter().map(|r| inputs12[r][3]).sum();
    assert!((after.outputs[&Rank(9)][3] - expect).abs() < 1e-2);
}

#[test]
fn scale_out_within_known_instances_skips_detection() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    cc.set_workers(vec![Rank(0), Rank(1), Rank(4), Rank(5)]);
    let scale = cc
        .add_workers(&[Rank(2), Rank(6)])
        .expect("valid scale-out");
    assert_eq!(scale.detection, SimDuration::ZERO);
    assert_eq!(cc.workers().len(), 6);
}

#[test]
fn invalid_scale_out_is_a_typed_error_not_a_panic() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    // Already part of the job.
    match cc.add_workers(&[Rank(0)]) {
        Err(AdapCCError::InvalidRequest(msg)) => {
            assert!(msg.contains("already part of the job"), "{msg}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // Outside the cluster.
    match cc.add_workers(&[Rank(99)]) {
        Err(AdapCCError::InvalidRequest(msg)) => {
            assert!(msg.contains("outside the cluster"), "{msg}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // Duplicated within one request.
    cc.set_workers(vec![Rank(0)]);
    match cc.add_workers(&[Rank(1), Rank(1)]) {
        Err(AdapCCError::InvalidRequest(msg)) => {
            assert!(msg.contains("twice"), "{msg}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    assert_eq!(cc.workers(), [Rank(0)], "job untouched by rejections");
}

// ---- fault recovery ----

#[test]
fn transient_flap_is_retried_and_recovers() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    // Flap every NIC link of instance 0 for 40ms: long enough to
    // trip the stall deadline, short enough that backoff outlives
    // it (25ms + 50ms puts the third attempt past the heal).
    let mut schedule = FaultSchedule::new();
    for link in nic_links(&c, InstanceId(0)) {
        schedule.push(Fault::LinkDown {
            link,
            from: SimTime::ZERO,
            until: SimTime::from_secs(0.040),
        });
    }
    cc.inject_faults(schedule);
    let rep = cc
        .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
        .expect("flap heals before retries run out");
    assert!(rep.faults.is_empty(), "transient fault excludes nobody");
    assert_eq!(cc.workers().len(), 8, "no worker was excluded");
    let log = cc.recovery_log();
    assert!(
        log.iter()
            .any(|e| matches!(e, RecoveryEvent::Detected { .. })),
        "{log:?}"
    );
    assert!(
        log.iter()
            .any(|e| matches!(e, RecoveryEvent::Retrying { .. })),
        "{log:?}"
    );
    assert!(
        log.iter()
            .any(|e| matches!(e, RecoveryEvent::Recovered { .. })),
        "{log:?}"
    );
    assert!(
        !log.iter()
            .any(|e| matches!(e, RecoveryEvent::Excluded { .. })),
        "{log:?}"
    );
}

#[test]
fn worker_crash_is_excluded_and_job_continues() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
        rank: Rank(5),
        at: SimTime::ZERO,
    }));
    let tensor = ByteSize::from_kib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    let workers = cc.workers().to_vec();
    let inputs = inputs_for(&workers, elems);
    let rep = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs.clone()))
        .expect("a single crash must be recoverable");
    assert_eq!(rep.faults, vec![Rank(5)]);
    assert_eq!(cc.workers().len(), 7);
    // The recovered collective sums over exactly the survivors.
    let expect: f32 = cc.workers().iter().map(|r| inputs[r][3]).sum();
    for w in cc.workers() {
        assert!((rep.outputs[w][3] - expect).abs() < 1e-3);
    }
    assert!(!rep.outputs.contains_key(&Rank(5)));
    assert!(cc
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Excluded { ranks, .. } if ranks == &[Rank(5)])));
}

#[test]
fn nic_failure_excludes_whole_instance() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    cc.inject_faults(FaultSchedule::new().with(Fault::NicFail {
        instance: InstanceId(1),
        at: SimTime::ZERO,
    }));
    let rep = cc
        .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
        .expect("the healthy server carries on");
    assert_eq!(rep.faults, vec![Rank(4), Rank(5), Rank(6), Rank(7)]);
    assert_eq!(cc.workers(), &[Rank(0), Rank(1), Rank(2), Rank(3)]);
}

#[test]
fn insufficient_survivors_is_reported() {
    let c = Cluster::homogeneous_a100(1);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let mut schedule = FaultSchedule::new();
    for rank in [1, 2, 3] {
        schedule.push(Fault::WorkerCrash {
            rank: Rank(rank),
            at: SimTime::ZERO,
        });
    }
    cc.inject_faults(schedule);
    let err = cc
        .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
        .expect_err("one survivor cannot run a collective");
    assert!(
        matches!(err, AdapCCError::InsufficientSurvivors { .. }),
        "{err}"
    );
}

// ---- membership lifecycle ----

#[test]
fn restarted_worker_rejoins_and_participates() {
    let c = Cluster::homogeneous_a100(2);
    let telemetry = adapcc_telemetry::Telemetry::enabled();
    let mut cc = AdapCC::init(
        &c,
        InitOptions {
            telemetry: telemetry.clone(),
            ..quick_options()
        },
    );
    cc.setup();
    // Crash at t=0; the worker restarts 300 ms in — long before the
    // post-exclusion clock (reconstruction alone is ~1 s), so the
    // first health probe already sees it alive.
    cc.inject_faults(
        FaultSchedule::new()
            .with(Fault::WorkerCrash {
                rank: Rank(5),
                at: SimTime::ZERO,
            })
            .with(Fault::WorkerRestart {
                rank: Rank(5),
                at: SimTime::from_secs(0.3),
            }),
    );
    let tensor = ByteSize::from_kib(64);
    let rep = cc
        .allreduce(tensor, &BTreeMap::new(), None)
        .expect("a single crash must be recoverable");
    assert_eq!(rep.faults, vec![Rank(5)]);
    assert_eq!(cc.workers().len(), 7);
    assert_eq!(
        cc.rank_health(Rank(5)),
        crate::session::RankHealth::Excluded
    );
    // Default policy needs two consecutive passing probes (one probe
    // round per collective); the rank is back for the collective after
    // that and serves its probation.
    let elems = (tensor.as_u64() / 4) as usize;
    let mut rejoined_at = None;
    for i in 0..4 {
        // Inputs are built from the pre-call worker set, as a trainer
        // would; the pipeline zero-fills a rank admitted mid-call.
        let inputs = inputs_for(cc.workers(), elems);
        let rep = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs))
            .expect("healed fabric");
        if cc.workers().len() == 8 && rejoined_at.is_none() {
            rejoined_at = Some(i);
            assert!(
                rep.outputs.contains_key(&Rank(5)),
                "rejoined rank participates: {:?}",
                rep.outputs.keys()
            );
        }
    }
    assert!(rejoined_at.is_some(), "worker never rejoined");
    assert!(telemetry.counter("health.rejoins") >= 1.0);
    assert!(cc
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Rejoined { ranks, .. } if ranks == &[Rank(5)])));
    // Probation ends after a couple more collectives.
    assert_eq!(cc.rank_health(Rank(5)), crate::session::RankHealth::Healthy);
}

#[test]
fn quarantine_biases_planning_but_not_the_fabric() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    // The NIC egress link sits on every profiled inter-instance edge,
    // so its quarantine must perturb the planning profile.
    let link = c.nic_egress_link(InstanceId(0));
    // Three flap episodes across distinct collectives quarantine it.
    assert!(cc.health.note_flap(link, 1, SimTime::ZERO).is_none());
    assert!(cc.health.note_flap(link, 2, SimTime::ZERO).is_none());
    let hold = cc
        .health
        .note_flap(link, 3, SimTime::ZERO)
        .expect("third episode quarantines");
    let eff = cc.effective_factors();
    assert!(
        eff.iter()
            .any(|(l, f)| *l == link && *f == crate::session::QUARANTINE_FACTOR),
        "{eff:?}"
    );
    assert!(
        cc.fabric_factors().iter().all(|(l, _)| *l != link),
        "physical factors untouched"
    );
    // Planning under the bias sees the collapsed link and re-solves.
    let rec = cc.reprofile();
    assert!(rec.changed, "quarantine must perturb the profile");
    // Once the hold-down runs out the bias is gone (strikes persist).
    cc.session_clock = SimTime::ZERO + hold;
    assert!(cc.effective_factors().iter().all(|(l, _)| *l != link));
    assert_eq!(cc.health.strikes(link), 1);
}

#[test]
fn backoff_exponent_clamps_at_pathological_retry_counts() {
    use crate::session::RecoveryPolicy;
    let p = RecoveryPolicy {
        max_retries: 128,
        ..Default::default()
    };
    assert_eq!(p.backoff_for(1), p.backoff_base);
    assert_eq!(p.backoff_for(2), p.backoff_base.scale(2.0));
    // At attempt 128 the unclamped doubling (25 ms * 2^127) is far past
    // the cap; the clamp keeps the arithmetic finite and the cap wins.
    assert_eq!(p.backoff_for(128), p.backoff_cap);
    assert_eq!(p.backoff_for(usize::MAX), p.backoff_cap);
}

#[test]
fn broadcast_from_excluded_root_is_invalid() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
        rank: Rank(5),
        at: SimTime::ZERO,
    }));
    let tensor = ByteSize::from_kib(64);
    cc.allreduce(tensor, &BTreeMap::new(), None)
        .expect("crash recovery");
    assert_eq!(cc.workers().len(), 7);
    let err = cc
        .broadcast(Rank(5), tensor, &BTreeMap::new(), None)
        .expect_err("dead root cannot broadcast");
    assert!(matches!(err, AdapCCError::InvalidRequest(_)), "{err}");
}

#[test]
fn group_collectives_match_world_semantics_on_the_group() {
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    let members = [Rank(0), Rank(2), Rank(5)];
    let elems = 16 * 1024 / 4;
    let inputs = inputs_for(&members, elems);
    let mut g = cc.group(&members).expect("valid members");
    let report = g
        .allreduce(
            ByteSize::from_kib(16),
            &BTreeMap::new(),
            Some(inputs.clone()),
        )
        .expect("healthy fabric");
    // The reduction runs over exactly the group's members.
    let expected: Vec<f32> = (0..elems)
        .map(|i| members.iter().map(|r| inputs[r][i]).sum())
        .collect();
    let outputs = report.outputs;
    assert_eq!(outputs.len(), members.len());
    for r in &members {
        assert_eq!(outputs[r], expected, "rank {r} sees the group sum");
    }
    // Roots outside the group are rejected up front.
    let err = g
        .broadcast(Rank(1), ByteSize::from_kib(16), &BTreeMap::new(), None)
        .expect_err("root outside the group");
    assert!(matches!(err, AdapCCError::InvalidRequest(_)), "{err}");
}

#[test]
fn exclusion_invalidates_exactly_the_groups_containing_the_dead_rank() {
    use adapcc_synth::group::GroupAxis;
    let c = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&c, quick_options());
    cc.setup();
    // Rank 3 sits in three overlapping groups; a fourth is disjoint.
    let overlapping = [
        vec![Rank(0), Rank(3)],
        vec![Rank(1), Rank(3), Rank(5)],
        vec![Rank(3), Rank(6), Rank(7)],
    ];
    let disjoint = vec![Rank(0), Rank(1), Rank(2)];
    let mut ids = Vec::new();
    for members in overlapping.iter().chain(std::iter::once(&disjoint)) {
        let g = cc
            .group_on(GroupAxis::Data, members)
            .expect("valid members");
        ids.push(g.process_group().expect("proper subgroup").id());
    }
    let survivor_id = *ids.last().unwrap();
    cc.declare_concurrent(
        &ids.iter()
            .map(|id| cc.registered_groups()[id].clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(cc.registered_groups().len(), 4);
    let dead = cc.invalidate_groups_for(&[Rank(3)]);
    // Exactly the three groups containing rank 3 are invalidated...
    assert_eq!(dead.len(), 3);
    assert!(ids[..3].iter().all(|id| dead.contains(id)));
    // ...and the disjoint group survives in both registry and the
    // declared concurrency set.
    assert!(!dead.contains(&survivor_id));
    assert_eq!(cc.registered_groups().len(), 1);
    assert!(cc.registered_groups().contains_key(&survivor_id));
    assert_eq!(cc.concurrent_ids(), &[survivor_id]);
}
