//! In-place graph reconstruction (reprofile → re-solve → re-set-up)
//! and elastic worker-set changes (scale-out, exclusion).

use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimDuration;
use adapcc_topo::detect::Detector;

use crate::collective::plan::StrategyKey;
use crate::error::AdapCCError;
use crate::reconstruct::ReconstructReport;
use crate::session::AdapCC;

impl<'c> AdapCC<'c> {
    /// Re-profiles the links under the given live capacity factors and,
    /// if the picture changed beyond the threshold, re-synthesizes all
    /// cached strategies and re-runs the context set-up — all without
    /// stopping the job (paper Sec. IV-B / Fig. 19(c)).
    pub fn reprofile(&mut self) -> ReconstructReport {
        let mut profiler =
            Profiler::new(self.cluster, &self.topo, self.options.seed ^ self.iteration);
        for (l, f) in self.effective_factors() {
            profiler.set_capacity_factor(l, f);
        }
        // Scheduled probe losses hit the next profiling pass (the
        // profiler's retransmission path absorbs them).
        for (l, c) in self.pending_probe_losses.drain(..) {
            profiler.inject_probe_loss(l, c);
        }
        let report = profiler.run();
        let delta = report.links.max_bandwidth_delta(&self.profile);
        let changed = delta > self.options.resynth_threshold;
        self.profile = report.links;
        let mut solving = SimDuration::ZERO;
        let mut setup = SimDuration::ZERO;
        if changed {
            let keys: Vec<StrategyKey> = self.strategies.keys().cloned().collect();
            self.strategies.clear();
            self.estimates.clear();
            self.exec_cache.clear();
            // Charge the modeled solver latency (like
            // `reconstruct_after_exclusion`) rather than local wall
            // time, so same-seed runs report identical reconstruction
            // costs. The plan cache scales it: any cold solve bills the
            // full anneal, pure warm starts bill the polish fraction,
            // pure exact hits are free.
            let before = self.synth_tally;
            for key in keys {
                let _ = self.strategy_for_key(&key);
            }
            solving = self.modeled_solving_since(before);
            setup = self
                .communicator
                .setup(self.cluster, self.options.parallelism)
                .elapsed;
        }
        let out = ReconstructReport {
            profiling: report.elapsed,
            solving,
            setup,
            changed,
        };
        self.last_reconstruct = Some(out);
        out
    }

    /// In-place reconstruction after a permanent exclusion: re-profile
    /// the surviving fabric, re-synthesize every strategy the job was
    /// running (strategies rooted at — or scoped to — a dead worker
    /// are dropped), and re-run the transmission-context set-up.
    /// Unlike [`Self::reprofile`] this always re-synthesizes — the
    /// worker set changed, so every cached strategy is stale
    /// regardless of bandwidth deltas — and it charges the modeled
    /// solver latency rather than local wall time, keeping the
    /// simulated session clock deterministic.
    pub(crate) fn reconstruct_after_exclusion(
        &mut self,
        dead: &[Rank],
        keys: Vec<StrategyKey>,
    ) -> ReconstructReport {
        let mut profiler =
            Profiler::new(self.cluster, &self.topo, self.options.seed ^ self.iteration);
        for (l, f) in self.effective_factors() {
            profiler.set_capacity_factor(l, f);
        }
        for (l, c) in self.pending_probe_losses.drain(..) {
            profiler.inject_probe_loss(l, c);
        }
        let report = profiler.run();
        self.profile = report.links;
        let before = self.synth_tally;
        // Registry-driven group invalidation: collect the ids of every
        // registered group containing a dead rank (and drop those
        // groups), then skip dead-scoped keys by an O(1) id check
        // instead of re-walking each key's member list per dead worker.
        let dead_groups = self.invalidate_groups_for(dead);
        let mut resynthesized = false;
        for key in keys {
            if key.root.is_some_and(|r| dead.contains(&r))
                || key
                    .scope
                    .as_ref()
                    .is_some_and(|g| dead_groups.contains(&g.id()))
            {
                continue;
            }
            resynthesized = true;
            let _ = self.strategy_for_key(&key);
        }
        // Exclusion shrinks the participant set, so every fingerprint's
        // shape half changes and the loop above solves cold — unless
        // the fleet has returned to a previously-seen worker set, where
        // the cache legitimately discounts the bill. With no surviving
        // keys the session still re-plans its graph at full cost.
        let solving = if resynthesized {
            self.modeled_solving_since(before)
        } else {
            crate::reconstruct::modeled_solve_cost(self.workers.len())
        };
        let setup = self
            .communicator
            .setup(self.cluster, self.options.parallelism)
            .elapsed;
        let out = ReconstructReport {
            profiling: report.elapsed,
            solving,
            setup,
            changed: true,
        };
        self.last_reconstruct = Some(out);
        out
    }

    /// Elastic scale-out (paper Sec. IV-A: detectors re-trigger "when
    /// a new worker joins the job"): admits new ranks into the job,
    /// re-runs detection for instances that were not previously part
    /// of it, re-profiles, and re-synthesizes — all without stopping
    /// training. Returns the cost breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] when a rank is already
    /// part of the job, appears twice in `new`, or lies outside the
    /// cluster; the job is left untouched.
    pub fn add_workers(&mut self, new: &[Rank]) -> Result<ScaleReport, AdapCCError> {
        use std::collections::BTreeSet;
        let existing_instances: BTreeSet<usize> = self
            .workers
            .iter()
            .map(|r| self.cluster.locate(*r).0 .0)
            .collect();
        let mut seen = BTreeSet::new();
        for r in new {
            if self.workers.contains(r) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "{r} is already part of the job"
                )));
            }
            if r.0 >= self.cluster.gpu_count() {
                return Err(AdapCCError::InvalidRequest(format!(
                    "{r} outside the cluster"
                )));
            }
            if !seen.insert(*r) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "{r} requested twice in one scale-out"
                )));
            }
        }
        // Detection re-runs only for instances joining the job; it is
        // concurrent per instance, so the cost is one instance's probe
        // schedule (or zero when only known instances grew).
        let joins_new_instance = new
            .iter()
            .any(|r| !existing_instances.contains(&self.cluster.locate(*r).0 .0));
        let detection = if joins_new_instance {
            let mut detector = Detector::new(self.cluster, self.options.seed ^ 0xE1A5);
            let report = detector.run();
            self.detection = report.clone();
            self.topo = report.logical_topology(self.cluster);
            report.elapsed
        } else {
            SimDuration::ZERO
        };
        let mut workers = self.workers.clone();
        workers.extend(new.iter().copied());
        workers.sort();
        self.set_workers(workers);
        let reconstruction = self.reprofile();
        Ok(ScaleReport {
            detection,
            reconstruction,
        })
    }

    /// Drops every registered process group containing a dead rank
    /// from the registry and returns their ids — the set of scopes
    /// whose cached strategies exclusion must invalidate. Groups with
    /// only survivors stay registered (their strategies re-synthesize
    /// over the same members).
    pub(crate) fn invalidate_groups_for(
        &mut self,
        dead: &[Rank],
    ) -> std::collections::BTreeSet<u64> {
        let dead_ids: std::collections::BTreeSet<u64> = self
            .groups
            .values()
            .filter(|g| g.intersects(dead))
            .map(|g| g.id())
            .collect();
        self.groups.retain(|id, _| !dead_ids.contains(id));
        self.concurrent.retain(|id| !dead_ids.contains(id));
        dead_ids
    }

    /// Removes faulty workers from the job and re-synthesizes over the
    /// survivors (the fault-recovery path; the data loader re-shards
    /// on the training side).
    pub fn exclude_workers(&mut self, faulty: &[Rank]) {
        let remaining: Vec<Rank> = self
            .workers
            .iter()
            .copied()
            .filter(|r| !faulty.contains(r))
            .collect();
        self.set_workers(remaining);
    }
}

/// Cost breakdown of one elastic scale-out event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleReport {
    /// Topology re-detection for newly joined instances (zero when only
    /// already-known instances grew).
    pub detection: SimDuration,
    /// The in-place profiling/re-synthesis that follows.
    pub reconstruction: ReconstructReport,
}

impl ScaleReport {
    /// Total time the job was blocked by the scale event.
    pub fn total(&self) -> SimDuration {
        self.detection + self.reconstruction.total()
    }
}
