//! The public collective entry points. Each is a thin wrapper: build
//! the declarative [`CollectiveSpec`], run it through the staged
//! pipeline (plan → relay → execute → assemble → report) inside the
//! recovery loop. No entry point carries bespoke orchestration.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;

use crate::collective::report::IterationReport;
use crate::collective::spec::CollectiveSpec;
use crate::error::AdapCCError;
use crate::session::AdapCC;

impl<'c> AdapCC<'c> {
    /// AllReduce without relay control: waits for every worker.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed; see [`AdapCC::inject_faults`].
    pub fn allreduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::allreduce();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// Reduce onto an automatically chosen root.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn reduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::reduce();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// Broadcast from `root`.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery,
    /// the request is malformed, or recovery excluded `root` itself.
    pub fn broadcast(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::broadcast();
        self.with_recovery(|cc| {
            cc.run_collective(&spec, Some(root), tensor, ready, inputs.as_ref())
        })
    }

    /// AlltoAll personalized exchange.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn alltoall(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::alltoall();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// AllReduce with adaptive relay control: the coordinator decides
    /// (ski-rental) whether to wait for stragglers or run a phase-1
    /// partial collective with relays followed by a phase-2 completion
    /// broadcast. Workers missing from `ready` are fault candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn allreduce_adaptive(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::allreduce_adaptive();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// AllGather, composed of one Broadcast per worker (paper
    /// Sec. IV-D). Each worker contributes `tensor` bytes; outputs are
    /// the rank-ordered concatenation (`N x tensor` per worker). The
    /// coordinator is consulted each iteration: behind a heavy
    /// straggler the ready workers' broadcasts run in phase 1 and the
    /// stragglers' complete in phase 2 (workers missing from `ready`
    /// count as ready at time zero).
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn allgather(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::allgather();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// ReduceScatter, composed of one Reduce per worker over its shard
    /// (paper Sec. IV-D). `tensor` is the full per-worker tensor; each
    /// worker ends with its aggregated `tensor / N` shard. Consults the
    /// relay coordinator like [`AdapCC::allgather`].
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] if the tensor does not
    /// split evenly into f32 shards over the current worker count
    /// (which may have shrunk through fault exclusion), and
    /// [`AdapCCError`] when an injected fault defeats recovery.
    pub fn reduce_scatter(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::reduce_scatter();
        self.with_recovery(|cc| cc.run_collective(&spec, None, tensor, ready, inputs.as_ref()))
    }

    /// Gather: every worker's `tensor` collected at `root`, which ends
    /// with the rank-ordered concatenation. A pure spec over the shared
    /// pipeline (per-worker point-to-point Broadcasts).
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery,
    /// the request is malformed, or recovery excluded `root` itself.
    pub fn gather(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::gather();
        self.with_recovery(|cc| {
            cc.run_collective(&spec, Some(root), tensor, ready, inputs.as_ref())
        })
    }

    /// Scatter: `root`'s `tensor` split into `N` equal f32 shards, one
    /// delivered to each worker. A pure spec over the shared pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] if the tensor does not
    /// split evenly over the current worker count, and [`AdapCCError`]
    /// when an injected fault defeats recovery or recovery excluded
    /// `root` itself.
    pub fn scatter(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        let spec = CollectiveSpec::scatter();
        self.with_recovery(|cc| {
            cc.run_collective(&spec, Some(root), tensor, ready, inputs.as_ref())
        })
    }
}
