//! The executor-level recovery loop: retry-with-backoff for transient
//! faults, health-check → exclusion → in-place reconstruction for
//! permanent ones.

use std::fmt;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::engine::NetSim;
use adapcc_simnet::faults::{nic_links, worker_links};
use adapcc_simnet::time::{SimDuration, SimTime};

use crate::collective::report::IterationReport;
use crate::error::{AdapCCError, FaultReport};
use crate::executor::DEFAULT_DEADLINE_MULTIPLIER;
use crate::reconstruct::ReconstructReport;
use crate::session::AdapCC;

/// How the session reacts to executor-level faults.
///
/// Transient faults (hop timeouts, incomplete runs) are retried with
/// bounded exponential backoff — a link flap heals while the session
/// backs off. Permanent faults (aborted transfers) and exhausted
/// retries trigger the exclusion path: suspects are health-checked,
/// confirmed-dead workers are excluded, and the communication graph is
/// reconstructed in place (never a job restart).
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Transient-fault retries before the session escalates to the
    /// health-check / exclusion path.
    pub max_retries: usize,
    /// First retry backoff; doubles per consecutive failed attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on a single backoff.
    pub backoff_cap: SimDuration,
    /// Per-hop deadline multiplier handed to the executor (see
    /// [`DEFAULT_DEADLINE_MULTIPLIER`]).
    pub deadline_multiplier: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 5,
            backoff_base: SimDuration::from_millis(25.0),
            backoff_cap: SimDuration::from_millis(400.0),
            deadline_multiplier: DEFAULT_DEADLINE_MULTIPLIER,
        }
    }
}

/// One entry of the session's recovery timeline (absolute session
/// clock).
#[derive(Debug, Clone)]
pub enum RecoveryEvent {
    /// The executor classified a fault.
    Detected {
        /// Detection instant.
        at: SimTime,
        /// The classified fault.
        report: FaultReport,
    },
    /// A transient fault is being retried after backoff.
    Retrying {
        /// Instant the retry starts (backoff included).
        at: SimTime,
        /// Consecutive attempt number (1 = first retry).
        attempt: usize,
        /// Backoff charged before this retry.
        backoff: SimDuration,
    },
    /// Confirmed-dead workers were excluded and the graph reconstructed
    /// over the survivors.
    Excluded {
        /// Instant reconstruction finished.
        at: SimTime,
        /// The workers removed from the job.
        ranks: Vec<Rank>,
        /// Cost of the in-place reconstruction.
        reconstruction: ReconstructReport,
    },
    /// A collective completed after one or more recovery actions.
    Recovered {
        /// Completion instant.
        at: SimTime,
        /// Transient retries used on the final attempt streak.
        attempts: usize,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::Detected { at, report } => {
                write!(f, "[{at}] detected: {report}")
            }
            RecoveryEvent::Retrying {
                at,
                attempt,
                backoff,
            } => {
                write!(f, "[{at}] retry #{attempt} after {backoff} backoff")
            }
            RecoveryEvent::Excluded {
                at,
                ranks,
                reconstruction,
            } => {
                write!(f, "[{at}] excluded ")?;
                for (i, r) in ranks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "; graph reconstructed in {}", reconstruction.total())
            }
            RecoveryEvent::Recovered { at, attempts } => {
                write!(
                    f,
                    "[{at}] recovered ({attempts} retry(ies) on final streak)"
                )
            }
        }
    }
}

impl<'c> AdapCC<'c> {
    /// Runs `attempt` to completion under the recovery policy.
    ///
    /// Transient faults retry with bounded exponential backoff.
    /// Permanent faults — and transients that exhaust their retries —
    /// escalate: suspects are health-checked against the armed
    /// schedule, confirmed-dead workers are excluded and the graph is
    /// reconstructed in place over the survivors, then the attempt
    /// streak restarts. Every action advances the session clock by the
    /// simulated time it consumed.
    pub(crate) fn with_recovery<F>(
        &mut self,
        mut attempt: F,
    ) -> Result<IterationReport, AdapCCError>
    where
        F: FnMut(&mut Self) -> Result<IterationReport, AdapCCError>,
    {
        let mut attempts = 0usize;
        let mut excluded: Vec<Rank> = Vec::new();
        loop {
            match attempt(self) {
                Ok(mut report) => {
                    self.session_clock += SimDuration::from_secs(report.finish.as_secs());
                    if attempts > 0 || !excluded.is_empty() {
                        self.recovery_log.push(RecoveryEvent::Recovered {
                            at: self.session_clock,
                            attempts,
                        });
                    }
                    for r in &excluded {
                        if !report.faults.contains(r) {
                            report.faults.push(*r);
                        }
                    }
                    report.faults.sort_unstable();
                    return Ok(report);
                }
                Err(AdapCCError::Fault(fault)) => {
                    self.session_clock += SimDuration::from_secs(fault.at.as_secs());
                    self.recovery_log.push(RecoveryEvent::Detected {
                        at: self.session_clock,
                        report: fault.clone(),
                    });
                    if fault.is_permanent() || attempts >= self.recovery.max_retries {
                        let dead = self.confirm_dead(&fault);
                        if dead.is_empty() {
                            // Nothing provably dead to exclude: either a
                            // permanent abort whose owner already left the
                            // job, or a transient that outlived our
                            // patience. Surface the classification.
                            return Err(if fault.is_permanent() {
                                AdapCCError::Fault(fault)
                            } else {
                                AdapCCError::RetriesExhausted {
                                    attempts,
                                    last: fault,
                                }
                            });
                        }
                        let survivors = self.workers.iter().filter(|r| !dead.contains(r)).count();
                        if survivors < 2 {
                            return Err(AdapCCError::InsufficientSurvivors { survivors });
                        }
                        // Cached strategy keys describe what the job was
                        // running; they are re-synthesized over the
                        // survivors below (set_workers clears the cache).
                        let keys: Vec<crate::collective::plan::StrategyKey> =
                            self.strategies.keys().cloned().collect();
                        self.exclude_workers(&dead);
                        // Share the exclusion with the relay coordinator's
                        // fault path (suspects narrowed to confirmed dead).
                        self.coordinator.note_executor_fault(FaultReport {
                            suspects: dead.clone(),
                            ..fault.clone()
                        });
                        let rec = self.reconstruct_after_exclusion(&dead, keys);
                        self.session_clock += rec.total();
                        self.recovery_log.push(RecoveryEvent::Excluded {
                            at: self.session_clock,
                            ranks: dead.clone(),
                            reconstruction: rec,
                        });
                        excluded.extend(dead);
                        attempts = 0;
                    } else {
                        attempts += 1;
                        let backoff = self
                            .recovery
                            .backoff_base
                            .scale(2f64.powi(attempts as i32 - 1))
                            .min(self.recovery.backoff_cap);
                        self.session_clock += backoff;
                        self.recovery_log.push(RecoveryEvent::Retrying {
                            at: self.session_clock,
                            attempt: attempts,
                            backoff,
                        });
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Health-checks a fault's suspects: a rank is confirmed dead when
    /// its local links have permanently failed (worker crash), or —
    /// for jobs spanning instances — when its instance's NIC links
    /// have (NIC failure cuts the whole instance off the fabric). The
    /// check replays the armed schedule up to the current session
    /// clock, i.e. it asks the hardware, not the timeline. Only ranks
    /// still in the job are returned.
    pub(crate) fn confirm_dead(&self, fault: &FaultReport) -> Vec<Rank> {
        let Some(schedule) = &self.fault_schedule else {
            return Vec::new();
        };
        let mut sim = NetSim::new(self.cluster);
        schedule.arm(&mut sim, self.session_clock);
        let multi_instance = {
            let mut insts: Vec<usize> = self
                .workers
                .iter()
                .map(|r| self.cluster.locate(*r).0 .0)
                .collect();
            insts.sort_unstable();
            insts.dedup();
            insts.len() > 1
        };
        let mut dead = Vec::new();
        for r in &fault.suspects {
            if !self.workers.contains(r) {
                continue;
            }
            // A crash fails *every* link adjacent to the worker's GPU.
            // Requiring all of them dead distinguishes the crashed rank
            // from a healthy neighbour that merely shares one NVLink
            // with it.
            let gpu_links = worker_links(self.cluster, *r);
            let gpu_dead =
                !gpu_links.is_empty() && gpu_links.iter().all(|l| sim.link_is_failed(*l));
            let (inst, _) = self.cluster.locate(*r);
            let nic_dead = multi_instance
                && nic_links(self.cluster, inst)
                    .iter()
                    .any(|l| sim.link_is_failed(*l));
            if gpu_dead || nic_dead {
                dead.push(*r);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}
