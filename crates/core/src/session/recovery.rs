//! The executor-level recovery loop: retry-with-backoff for transient
//! faults, health-check → exclusion → in-place reconstruction for
//! permanent ones.

use std::fmt;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::engine::NetSim;
use adapcc_simnet::faults::{nic_links, worker_links};
use adapcc_simnet::time::{SimDuration, SimTime};

use crate::collective::report::IterationReport;
use crate::error::{AdapCCError, FaultReport, RecoverySummary};
use crate::executor::DEFAULT_DEADLINE_MULTIPLIER;
use crate::reconstruct::ReconstructReport;
use crate::session::{AdapCC, ScaleReport};

/// How the session reacts to executor-level faults.
///
/// Transient faults (hop timeouts, incomplete runs) are retried with
/// bounded exponential backoff — a link flap heals while the session
/// backs off. Permanent faults (aborted transfers) and exhausted
/// retries trigger the exclusion path: suspects are health-checked,
/// confirmed-dead workers are excluded, and the communication graph is
/// reconstructed in place (never a job restart).
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Transient-fault retries before the session escalates to the
    /// health-check / exclusion path.
    pub max_retries: usize,
    /// First retry backoff; doubles per consecutive failed attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on a single backoff.
    pub backoff_cap: SimDuration,
    /// Per-hop deadline multiplier handed to the executor (see
    /// [`DEFAULT_DEADLINE_MULTIPLIER`]).
    pub deadline_multiplier: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 5,
            backoff_base: SimDuration::from_millis(25.0),
            backoff_cap: SimDuration::from_millis(400.0),
            deadline_multiplier: DEFAULT_DEADLINE_MULTIPLIER,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff charged before retry number `attempt` (1-based):
    /// `backoff_base * 2^(attempt - 1)`, capped at `backoff_cap`. The
    /// exponent is clamped so a pathological `max_retries` cannot push
    /// the doubling into a non-finite duration before the cap applies.
    pub fn backoff_for(&self, attempt: usize) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(63) as i32;
        self.backoff_base
            .scale(2f64.powi(exp))
            .min(self.backoff_cap)
    }
}

/// One entry of the session's recovery timeline (absolute session
/// clock).
#[derive(Debug, Clone)]
pub enum RecoveryEvent {
    /// The executor classified a fault.
    Detected {
        /// Detection instant.
        at: SimTime,
        /// The classified fault.
        report: FaultReport,
    },
    /// A transient fault is being retried after backoff.
    Retrying {
        /// Instant the retry starts (backoff included).
        at: SimTime,
        /// Consecutive attempt number (1 = first retry).
        attempt: usize,
        /// Backoff charged before this retry.
        backoff: SimDuration,
    },
    /// Confirmed-dead workers were excluded and the graph reconstructed
    /// over the survivors.
    Excluded {
        /// Instant reconstruction finished.
        at: SimTime,
        /// The workers removed from the job.
        ranks: Vec<Rank>,
        /// Cost of the in-place reconstruction.
        reconstruction: ReconstructReport,
    },
    /// A collective completed after one or more recovery actions.
    Recovered {
        /// Completion instant.
        at: SimTime,
        /// Transient retries used on the final attempt streak.
        attempts: usize,
    },
    /// Previously excluded ranks passed their health probes and were
    /// re-admitted through the elastic scale-out path (they serve a
    /// relay-ineligible probation before counting as healthy again).
    Rejoined {
        /// Instant re-admission finished.
        at: SimTime,
        /// The re-admitted ranks.
        ranks: Vec<Rank>,
        /// Cost of the scale event (detection + reconstruction).
        scale: ScaleReport,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::Detected { at, report } => {
                write!(f, "[{at}] detected: {report}")
            }
            RecoveryEvent::Retrying {
                at,
                attempt,
                backoff,
            } => {
                write!(f, "[{at}] retry #{attempt} after {backoff} backoff")
            }
            RecoveryEvent::Excluded {
                at,
                ranks,
                reconstruction,
            } => {
                write!(f, "[{at}] excluded ")?;
                for (i, r) in ranks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "; graph reconstructed in {}", reconstruction.total())
            }
            RecoveryEvent::Recovered { at, attempts } => {
                write!(
                    f,
                    "[{at}] recovered ({attempts} retry(ies) on final streak)"
                )
            }
            RecoveryEvent::Rejoined { at, ranks, scale } => {
                write!(f, "[{at}] rejoined ")?;
                for (i, r) in ranks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "; scale-out took {}", scale.total())
            }
        }
    }
}

impl<'c> AdapCC<'c> {
    /// Runs `attempt` to completion under the recovery policy.
    ///
    /// Transient faults retry with bounded exponential backoff.
    /// Permanent faults — and transients that exhaust their retries —
    /// escalate: suspects are health-checked against the armed
    /// schedule, confirmed-dead workers are excluded and the graph is
    /// reconstructed in place over the survivors, then the attempt
    /// streak restarts. Every action advances the session clock by the
    /// simulated time it consumed.
    pub(crate) fn with_recovery<F>(
        &mut self,
        mut attempt: F,
    ) -> Result<IterationReport, AdapCCError>
    where
        F: FnMut(&mut Self) -> Result<IterationReport, AdapCCError>,
    {
        self.maintain_membership();
        // One flap episode per *logical* collective: every retry bumps
        // `iteration`, so the episode id is pinned before the loop.
        let episode = self.iteration;
        let mut attempts = 0usize;
        let mut excluded: Vec<Rank> = Vec::new();
        loop {
            match attempt(self) {
                Ok(mut report) => {
                    self.session_clock += SimDuration::from_secs(report.finish.as_secs());
                    if attempts > 0 || !excluded.is_empty() {
                        self.recovery_log.push(RecoveryEvent::Recovered {
                            at: self.session_clock,
                            attempts,
                        });
                    }
                    // Surviving the collective absolves every suspect
                    // that was never confirmed dead.
                    self.health.absolve();
                    for r in &excluded {
                        if !report.faults.contains(r) {
                            report.faults.push(*r);
                        }
                    }
                    report.faults.sort_unstable();
                    return Ok(report);
                }
                Err(AdapCCError::Fault(fault)) => {
                    self.session_clock += SimDuration::from_secs(fault.at.as_secs());
                    self.recovery_log.push(RecoveryEvent::Detected {
                        at: self.session_clock,
                        report: fault.clone(),
                    });
                    for r in &fault.suspects {
                        if self.health.note_suspected(*r) {
                            self.options.telemetry.add_counter("health.suspected", 1.0);
                        }
                    }
                    // Transient faults feed the flap ledger: a link that
                    // keeps flapping across iterations is quarantined
                    // (capacity collapsed for planning) so the annealer
                    // routes around it.
                    if !fault.is_permanent() {
                        let mut quarantined = false;
                        for l in &fault.links {
                            if let Some(hold) =
                                self.health.note_flap(*l, episode, self.session_clock)
                            {
                                quarantined = true;
                                self.options
                                    .telemetry
                                    .add_counter("health.quarantines", 1.0);
                                let start = self.session_clock.as_secs();
                                self.options.telemetry.span(
                                    "health.quarantine",
                                    "health",
                                    start,
                                    start + hold.as_secs(),
                                );
                            }
                        }
                        if quarantined {
                            let rec = self.reprofile();
                            self.session_clock += rec.total();
                        }
                    }
                    let mut dead = Vec::new();
                    if fault.is_permanent() || attempts >= self.recovery.max_retries {
                        dead = self.confirm_dead(&fault);
                        if dead.is_empty() && attempts >= self.recovery.max_retries {
                            // Nothing provably dead to exclude and no
                            // patience left. Surface the classification
                            // with the recovery timeline attached.
                            return Err(if fault.is_permanent() {
                                AdapCCError::Fault(fault)
                            } else {
                                AdapCCError::RetriesExhausted {
                                    attempts,
                                    last: fault,
                                    recovery: self.recovery_summary(),
                                }
                            });
                        }
                    }
                    if !dead.is_empty() {
                        let survivors = self.workers.iter().filter(|r| !dead.contains(r)).count();
                        if survivors < 2 {
                            return Err(AdapCCError::InsufficientSurvivors {
                                survivors,
                                recovery: self.recovery_summary(),
                            });
                        }
                        // Cached strategy keys describe what the job was
                        // running; they are re-synthesized over the
                        // survivors below (set_workers clears the cache).
                        let keys: Vec<crate::collective::plan::StrategyKey> =
                            self.strategies.keys().cloned().collect();
                        self.exclude_workers(&dead);
                        // Share the exclusion with the relay coordinator's
                        // fault path (suspects narrowed to confirmed dead).
                        self.coordinator.note_executor_fault(FaultReport {
                            suspects: dead.clone(),
                            ..fault.clone()
                        });
                        let rec = self.reconstruct_after_exclusion(&dead, keys);
                        self.session_clock += rec.total();
                        self.recovery_log.push(RecoveryEvent::Excluded {
                            at: self.session_clock,
                            ranks: dead.clone(),
                            reconstruction: rec,
                        });
                        for r in &dead {
                            self.health.note_excluded(*r);
                        }
                        for r in &fault.suspects {
                            if !dead.contains(r) {
                                self.health.clear_suspected(*r);
                            }
                        }
                        self.options
                            .telemetry
                            .add_counter("health.excluded", dead.len() as f64);
                        self.options
                            .telemetry
                            .add_counter("recovery.exclusions", dead.len() as f64);
                        excluded.extend(dead);
                        attempts = 0;
                    } else {
                        // A transient worth retrying — or a permanent
                        // abort with nothing provably dead behind it
                        // (the crashed worker may already have
                        // restarted, healing the fabric for the next
                        // attempt). Back off and retry.
                        attempts += 1;
                        let backoff = self.recovery.backoff_for(attempts);
                        self.session_clock += backoff;
                        self.options.telemetry.add_counter("recovery.retries", 1.0);
                        self.recovery_log.push(RecoveryEvent::Retrying {
                            at: self.session_clock,
                            attempt: attempts,
                            backoff,
                        });
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Runs the membership lifecycle ahead of a collective: graduates
    /// probation ranks, releases expired quarantines (re-synthesizing
    /// over the restored capacity), health-probes excluded ranks
    /// against the armed schedule, and re-admits ranks with enough
    /// consecutive passing probes through [`AdapCC::add_workers`].
    pub(crate) fn maintain_membership(&mut self) {
        let graduated = self.health.graduate(self.iteration);
        if !graduated.is_empty() {
            self.options
                .telemetry
                .add_counter("health.graduations", graduated.len() as f64);
        }
        let released = self.health.expire_quarantines(self.session_clock);
        if !released.is_empty() {
            // The planning profile was biased around the quarantined
            // links; re-profile at real capacity and re-synthesize.
            let rec = self.reprofile();
            self.session_clock += rec.total();
        }
        if !graduated.is_empty() || !released.is_empty() {
            self.coordinator
                .set_relay_ineligible(self.health.probation_ranks());
        }
        let excluded = self.health.excluded_ranks();
        if excluded.is_empty() {
            return;
        }
        let Some(schedule) = &self.fault_schedule else {
            return;
        };
        // One modeled probe round covers every excluded rank; truth is
        // the armed schedule replayed to the current session clock (a
        // crash healed by a later restart probes alive).
        self.session_clock += self.health.policy().probe_cost;
        let dead = schedule.permanently_excluded_ranks(self.cluster, self.session_clock);
        let mut ready = Vec::new();
        for r in excluded {
            if self.health.note_probe(r, !dead.contains(&r)) {
                ready.push(r);
            }
        }
        if ready.is_empty() {
            return;
        }
        match self.add_workers(&ready) {
            Ok(scale) => {
                let start = self.session_clock.as_secs();
                self.session_clock += scale.total();
                for r in &ready {
                    self.health.note_admitted(*r, self.iteration);
                }
                self.coordinator
                    .set_relay_ineligible(self.health.probation_ranks());
                self.options
                    .telemetry
                    .add_counter("health.rejoins", ready.len() as f64);
                self.options.telemetry.span(
                    "health.rejoin",
                    "health",
                    start,
                    self.session_clock.as_secs(),
                );
                self.recovery_log.push(RecoveryEvent::Rejoined {
                    at: self.session_clock,
                    ranks: ready,
                    scale,
                });
            }
            Err(_) => {
                // Raced back into the job through another path (e.g. a
                // manual scale-out); nothing left to re-admit.
            }
        }
    }

    /// Condenses the recovery timeline into the counts attached to
    /// terminal recovery errors.
    pub(crate) fn recovery_summary(&self) -> RecoverySummary {
        let mut s = RecoverySummary::default();
        for e in &self.recovery_log {
            match e {
                RecoveryEvent::Detected { .. } => s.detections += 1,
                RecoveryEvent::Retrying { .. } => s.retries += 1,
                RecoveryEvent::Excluded { ranks, .. } => s.exclusions += ranks.len(),
                _ => {}
            }
        }
        s
    }

    /// Health-checks a fault's suspects: a rank is confirmed dead when
    /// its local links have permanently failed (worker crash), or —
    /// for jobs spanning instances — when its instance's NIC links
    /// have (NIC failure cuts the whole instance off the fabric). The
    /// check replays the armed schedule up to the current session
    /// clock. Link states alone can mask a death under churn — a
    /// neighbour's restart revives the NVLink it shares with a worker
    /// that is still down — so the recovery-aware membership view of
    /// the schedule is consulted as well. Only ranks still in the job
    /// are returned.
    pub(crate) fn confirm_dead(&self, fault: &FaultReport) -> Vec<Rank> {
        let Some(schedule) = &self.fault_schedule else {
            return Vec::new();
        };
        let schedule_dead = schedule.permanently_excluded_ranks(self.cluster, self.session_clock);
        let mut sim = NetSim::new(self.cluster);
        schedule.arm(&mut sim, self.session_clock);
        let multi_instance = {
            let mut insts: Vec<usize> = self
                .workers
                .iter()
                .map(|r| self.cluster.locate(*r).0 .0)
                .collect();
            insts.sort_unstable();
            insts.dedup();
            insts.len() > 1
        };
        let mut dead = Vec::new();
        for r in &fault.suspects {
            if !self.workers.contains(r) {
                continue;
            }
            // A crash fails *every* link adjacent to the worker's GPU.
            // Requiring all of them dead distinguishes the crashed rank
            // from a healthy neighbour that merely shares one NVLink
            // with it.
            let gpu_links = worker_links(self.cluster, *r);
            let gpu_dead =
                !gpu_links.is_empty() && gpu_links.iter().all(|l| sim.link_is_failed(*l));
            let (inst, _) = self.cluster.locate(*r);
            let nic_dead = multi_instance
                && nic_links(self.cluster, inst)
                    .iter()
                    .any(|l| sim.link_is_failed(*l));
            if gpu_dead || nic_dead || schedule_dead.contains(r) {
                dead.push(*r);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}
