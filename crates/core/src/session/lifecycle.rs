//! Session lifecycle: setup, fault arming, periodic profiling
//! schedule, fabric factors, and read-only accessors.

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::{Cluster, LinkId, Rank};
use adapcc_simnet::faults::FaultSchedule;
use adapcc_simnet::time::SimTime;
use adapcc_topo::detect::DetectionReport;
use adapcc_topo::logical::LogicalTopology;

use crate::communicator::SetupReport;
use crate::reconstruct::ReconstructReport;
use crate::relay::RelayStats;
use crate::session::{
    AdapCC, HealthMonitor, HealthPolicy, InitReport, RankHealth, RecoveryEvent, RecoveryPolicy,
    QUARANTINE_FACTOR,
};

impl<'c> AdapCC<'c> {
    // ---- fault injection & recovery configuration ----

    /// Arms a fault schedule against the session: every subsequent
    /// collective executes with per-hop stall detection over a fabric
    /// that replays `schedule` (timed against the session clock), and
    /// faults that surface go through the recovery loop —
    /// retry-with-backoff for transients, health-check → exclusion →
    /// in-place graph reconstruction for permanent failures. Probe-loss
    /// events are queued for the next profiling pass. Resets the
    /// session clock and the recovery timeline.
    pub fn inject_faults(&mut self, schedule: FaultSchedule) {
        self.pending_probe_losses = schedule.probe_losses().collect();
        self.fault_schedule = Some(schedule);
        self.session_clock = SimTime::ZERO;
        self.recovery_log.clear();
        // Cached zero-skew times were measured on a healthy fabric.
        self.exec_cache.clear();
        self.estimates.clear();
        // A fresh timeline gets a fresh membership ledger.
        self.health = HealthMonitor::new(self.health.policy().clone());
        self.coordinator.set_relay_ineligible(Vec::new());
    }

    /// Disarms fault injection; subsequent collectives run on a healthy
    /// fabric again.
    pub fn clear_faults(&mut self) {
        self.fault_schedule = None;
        self.pending_probe_losses.clear();
        self.exec_cache.clear();
        self.estimates.clear();
    }

    /// The armed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.fault_schedule.as_ref()
    }

    /// Absolute session clock: total simulated time consumed by
    /// collectives, backoffs, and reconstructions since the last
    /// [`AdapCC::inject_faults`]. Fault-schedule timestamps are
    /// interpreted against this clock.
    pub fn session_clock(&self) -> SimTime {
        self.session_clock
    }

    /// The recovery timeline (detections, retries, exclusions,
    /// recoveries) accumulated since the last [`AdapCC::inject_faults`].
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// Replaces the recovery policy.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        assert!(
            policy.deadline_multiplier.is_finite() && policy.deadline_multiplier > 1.0,
            "deadline multiplier must exceed 1"
        );
        self.recovery = policy;
    }

    /// Replaces the membership health policy. Resets the health
    /// ledger: existing probe streaks, probations, and quarantines are
    /// dropped.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        assert!(
            policy.probes_to_rejoin > 0 && policy.flap_threshold > 0,
            "health thresholds must be positive"
        );
        self.health = HealthMonitor::new(policy);
        self.coordinator.set_relay_ineligible(Vec::new());
    }

    /// The membership lifecycle state of one rank.
    pub fn rank_health(&self, rank: Rank) -> RankHealth {
        self.health.state_of(rank)
    }

    /// The membership health monitor (rank states, quarantines).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Enables periodic on-the-fly re-profiling every `iterations`
    /// collective calls (the paper's `adapcc.profile()` API; Sec. VI-D
    /// uses 500). The pass runs transparently at the start of the
    /// triggering iteration; its cost is visible through
    /// [`AdapCC::last_reconstruct`].
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn set_profile_period(&mut self, iterations: u64) {
        assert!(iterations > 0, "profiling period must be positive");
        self.profile_period = Some(iterations);
    }

    /// Disables periodic re-profiling.
    pub fn clear_profile_period(&mut self) {
        self.profile_period = None;
    }

    /// The most recent automatic (or manual) reconstruction report.
    pub fn last_reconstruct(&self) -> Option<ReconstructReport> {
        self.last_reconstruct
    }

    /// Runs the periodic profiling pass if this iteration is due.
    pub(crate) fn maybe_reprofile(&mut self) {
        if let Some(period) = self.profile_period {
            if self.iteration > 0 && self.iteration.is_multiple_of(period) {
                let report = self.reprofile();
                self.last_reconstruct = Some(report);
            }
        }
    }

    /// Applies live capacity factors (the `tc`-shaped / trace-driven
    /// bandwidth of Sec. VI-D) to every subsequent collective and to
    /// re-profiling passes.
    pub fn set_fabric_factors(&mut self, factors: Vec<(LinkId, f64)>) {
        self.fabric_factors = factors;
        self.exec_cache.clear();
        self.estimates.clear();
    }

    /// Builds the transmission contexts (the paper's `adapcc.setup()`).
    pub fn setup(&mut self) -> SetupReport {
        self.communicator
            .setup(self.cluster, self.options.parallelism)
    }

    /// The initialization cost breakdown.
    pub fn init_report(&self) -> InitReport {
        self.init_report
    }

    /// The cluster the session runs over.
    pub fn cluster(&self) -> &'c Cluster {
        self.cluster
    }

    /// The live capacity factors applied to the fabric.
    pub fn fabric_factors(&self) -> &[(LinkId, f64)] {
        &self.fabric_factors
    }

    /// The capacity factors the *planning* passes (profiler →
    /// synthesizer) see: the live fabric factors with every actively
    /// quarantined link collapsed to [`QUARANTINE_FACTOR`], so the
    /// annealer routes around chronic flappers. The executor keeps the
    /// physical factors — quarantine is a routing bias, not a fabric
    /// degradation — and with no active quarantine this is exactly
    /// [`AdapCC::fabric_factors`], so healthy runs are unchanged.
    pub(crate) fn effective_factors(&self) -> Vec<(LinkId, f64)> {
        let quarantined = self.health.quarantined_links(self.session_clock);
        let mut out = self.fabric_factors.clone();
        for l in quarantined {
            match out.iter_mut().find(|(k, _)| *k == l) {
                Some(e) => e.1 = e.1.min(QUARANTINE_FACTOR),
                None => out.push((l, QUARANTINE_FACTOR)),
            }
        }
        out
    }

    /// The detected topology report.
    pub fn detection(&self) -> &DetectionReport {
        &self.detection
    }

    /// The logical topology.
    pub fn topology(&self) -> &LogicalTopology {
        &self.topo
    }

    /// The current link profile.
    pub fn link_profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Relay statistics accumulated so far (Fig. 15 / Fig. 19(d)).
    pub fn relay_stats(&self) -> &RelayStats {
        self.coordinator.stats()
    }

    /// All worker ranks of the job.
    pub fn workers(&self) -> &[Rank] {
        &self.workers
    }

    /// Restricts the job to a subset of workers (after faults, or for
    /// partial-job collectives). Cached strategies are dropped.
    pub fn set_workers(&mut self, workers: Vec<Rank>) {
        assert!(!workers.is_empty(), "job needs at least one worker");
        self.workers = workers;
        self.strategies.clear();
        self.estimates.clear();
        self.exec_cache.clear();
    }
}
