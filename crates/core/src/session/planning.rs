//! Lazy strategy synthesis through the plan cache, zero-skew execution
//! caching, ski-rental buy estimates, and raw executor access.

use adapcc_plancache::{
    fingerprint, CachedPlan, Fingerprint, FingerprintInputs, Lookup, PlanCacheStats,
};
use adapcc_planserve::{PlanService, Served};
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::{SynthRequest, Synthesizer};
use adapcc_synth::strategy::Strategy;

use crate::collective::plan::StrategyKey;
use crate::error::AdapCCError;
use crate::executor::{BatchReport, ExecutionRequest, Executor};
use crate::relay::BuyEstimate;
use crate::session::{AdapCC, SynthTally};

impl<'c> AdapCC<'c> {
    /// The synthesized strategy for a primitive/tensor pair (cached).
    pub fn strategy_for(&mut self, primitive: Primitive, tensor: ByteSize) -> &Strategy {
        self.strategy_for_key(&StrategyKey {
            primitive,
            tensor: tensor.as_u64(),
            root: None,
            scope: None,
        })
    }

    /// The synthesized strategy for a rooted primitive (broadcast,
    /// reduce, gather, scatter). `root = None` falls back to the
    /// primitive's canonical rank-0 root. This is the entry point the
    /// plan service drives: many jobs resolving the same
    /// `(primitive, tensor, root)` against one shared
    /// [`PlanService`] pay for exactly one solve.
    pub fn strategy_for_root(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        root: Option<Rank>,
    ) -> &Strategy {
        self.strategy_for_key(&StrategyKey {
            primitive,
            tensor: tensor.as_u64(),
            root,
            scope: None,
        })
    }

    /// The synthesized strategy behind one canonical key (memoized per
    /// worker set; misses go through the plan cache). Scoped keys
    /// register their group in the session registry, so exclusion can
    /// invalidate exactly the groups containing a dead rank — even for
    /// scopes built ad hoc (pairwise stages) rather than via
    /// [`AdapCC::group`].
    pub(crate) fn strategy_for_key(&mut self, key: &StrategyKey) -> &Strategy {
        if let Some(g) = &key.scope {
            self.groups.insert(g.id(), g.clone());
        }
        if !self.strategies.contains_key(key) {
            let strategy = self.synthesize_through_cache(key);
            self.strategies.insert(key.clone(), strategy);
        }
        &self.strategies[key]
    }

    /// Satisfies one synthesis request through the plan cache: exact
    /// fingerprint hits return the stored strategy without touching the
    /// solver, near misses warm-start it from the stored seed, and
    /// misses (or seeds the solver rejects) solve cold and populate the
    /// cache.
    fn synthesize_through_cache(&mut self, key: &StrategyKey) -> Strategy {
        let participants = key
            .scope
            .as_ref()
            .map(|g| g.members().to_vec())
            .unwrap_or_else(|| self.workers.clone());
        let mut req = SynthRequest::new(
            key.primitive,
            ByteSize::from_bytes(key.tensor),
            self.options.parallelism,
            participants,
        );
        req.root = key.root;
        req.seed = self.options.seed;
        let fp = self.plan_fingerprint(&req, self.concurrency_component(key.scope.as_ref()));
        if let Some(service) = self.options.plan_service.clone() {
            return self.synthesize_through_service(&service, &req, fp);
        }
        let full = crate::reconstruct::modeled_solve_cost(self.workers.len());
        let warm_cost = crate::reconstruct::modeled_warm_solve_cost(self.workers.len());
        let lookup = self.plan_cache.lookup(&fp);
        let strategy = match lookup {
            // Serve only plans that still validate against the topology
            // (a corrupted or hand-edited disk entry must not execute).
            Lookup::Hit(plan) if plan.strategy.validate(&self.topo).is_ok() => {
                self.synth_tally.hit += 1;
                self.plan_cache.note_saved(full);
                plan.strategy
            }
            Lookup::Warm(plan) => {
                let warm = Synthesizer::new(&self.topo, &self.profile)
                    .with_config(self.options.synth.clone())
                    .with_telemetry(self.options.telemetry.clone())
                    .synthesize_warm(&req, &plan.seed);
                match warm {
                    Some((strategy, seed)) => {
                        self.synth_tally.warm += 1;
                        self.plan_cache.note_saved(SimDuration::from_secs(
                            full.as_secs() - warm_cost.as_secs(),
                        ));
                        self.plan_cache.insert(
                            fp,
                            CachedPlan {
                                strategy: strategy.clone(),
                                seed,
                            },
                        );
                        strategy
                    }
                    None => {
                        self.plan_cache.warm_fell_back();
                        self.synthesize_cold(&req, fp)
                    }
                }
            }
            _ => self.synthesize_cold(&req, fp),
        };
        self.plan_cache.export_counters(&self.options.telemetry);
        strategy
    }

    /// Satisfies one synthesis request through the shared cross-job
    /// [`PlanService`]: exact hits and coalesced in-flight solves skip
    /// this session's solver entirely, shape siblings stored by *other
    /// jobs* warm-start it, and true cold keys solve once under the
    /// service's single-flight admission.
    fn synthesize_through_service(
        &mut self,
        service: &PlanService,
        req: &SynthRequest,
        fp: Fingerprint,
    ) -> Strategy {
        let topo = &self.topo;
        let profile = &self.profile;
        let synth = self.options.synth.clone();
        let telemetry = self.options.telemetry.clone();
        let tally = &mut self.synth_tally;
        let resolved = service.resolve(fp, |seed| {
            if let Some(prev) = seed {
                if let Some((strategy, seed)) = Synthesizer::new(topo, profile)
                    .with_config(synth.clone())
                    .with_telemetry(telemetry.clone())
                    .synthesize_warm(req, &prev.seed)
                {
                    tally.warm += 1;
                    return (CachedPlan { strategy, seed }, true);
                }
            }
            tally.cold += 1;
            let (strategy, seed) = Synthesizer::new(topo, profile)
                .with_config(synth.clone())
                .with_telemetry(telemetry.clone())
                .synthesize_with_seed(req);
            (CachedPlan { strategy, seed }, false)
        });
        if matches!(resolved.served, Served::Hit | Served::Coalesced) {
            self.synth_tally.hit += 1;
            // A served plan came from another job's solve; guard it the
            // same way a disk-tier hit is guarded before executing.
            if resolved.plan.strategy.validate(&self.topo).is_err() {
                self.synth_tally.cold += 1;
                let (strategy, seed) = Synthesizer::new(&self.topo, &self.profile)
                    .with_config(self.options.synth.clone())
                    .with_telemetry(self.options.telemetry.clone())
                    .synthesize_with_seed(req);
                service.insert(
                    fp,
                    CachedPlan {
                        strategy: strategy.clone(),
                        seed,
                    },
                );
                service.export_counters(&self.options.telemetry);
                return strategy;
            }
        }
        service.export_counters(&self.options.telemetry);
        resolved.plan.strategy.clone()
    }

    fn synthesize_cold(&mut self, req: &SynthRequest, fp: Fingerprint) -> Strategy {
        self.synth_tally.cold += 1;
        let (strategy, seed) = Synthesizer::new(&self.topo, &self.profile)
            .with_config(self.options.synth.clone())
            .with_telemetry(self.options.telemetry.clone())
            .synthesize_with_seed(req);
        self.plan_cache.insert(
            fp,
            CachedPlan {
                strategy: strategy.clone(),
                seed,
            },
        );
        strategy
    }

    /// The canonical cache key of a synthesis request under the current
    /// topology, worker set and profile. Exclusions shrink
    /// `participants`, so they flip the shape half and structurally
    /// invalidate every pre-exclusion plan; profile drift past the
    /// `resynth_threshold` quantization flips only the profile half,
    /// leaving the entry warm-startable. The key carries the *resolved*
    /// tier decision (would this request synthesize hierarchically?),
    /// so flipping `SynthConfig::hierarchical` — or crossing the auto
    /// threshold as workers join — never serves a plan solved under the
    /// other regime. `concurrency` is the group-scope concurrency-set
    /// component (`0` = solo): a strategy solved against one set of
    /// co-scheduled peers never serves a different regime, and a TP
    /// slice's plan can never serve a DP ring because the scoped
    /// participant sets already differ.
    fn plan_fingerprint(&self, req: &SynthRequest, concurrency: u64) -> Fingerprint {
        let instances =
            adapcc_synth::solver::group_by_instance(&self.topo, &req.participants).len();
        fingerprint(&FingerprintInputs {
            topo: &self.topo,
            profile: &self.profile,
            participants: &req.participants,
            relays: &req.relays,
            primitive: req.primitive,
            parallelism: req.parallelism,
            tensor: req.tensor,
            root: req.root,
            quantization: self.options.resynth_threshold,
            hierarchical: self
                .options
                .synth
                .hierarchical
                .enabled_for(req.participants.len(), instances),
            concurrency,
        })
    }

    /// The concurrency-set fingerprint component for a scope: the hash
    /// of all declared-concurrent group ids when `scope` belongs to a
    /// declared set of two or more groups, `0` (solo) otherwise —
    /// world-scoped and undeclared solves keep their historical
    /// fingerprints byte-identical.
    fn concurrency_component(&self, scope: Option<&adapcc_synth::group::ProcessGroup>) -> u64 {
        match scope {
            Some(g) if self.concurrent.len() > 1 && self.concurrent.contains(&g.id()) => {
                adapcc_synth::group::concurrency_hash(&self.concurrent)
            }
            _ => 0,
        }
    }

    /// Plan-cache effectiveness counters (hits, misses, warm starts,
    /// modeled solver latency saved).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// An executor over the current fabric: live capacity factors
    /// always, fault schedule + stall deadlines when one is armed.
    pub(crate) fn executor(&self) -> Executor<'_> {
        let mut exec = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .with_telemetry(self.pipeline_telemetry());
        if let Some(schedule) = &self.fault_schedule {
            exec = exec
                .with_fault_schedule(schedule.clone(), self.session_clock)
                .with_deadline_multiplier(self.recovery.deadline_multiplier);
        }
        exec
    }

    /// The session telemetry offset past init (detection + profiling),
    /// the origin every pipeline-stage and executor span is stitched
    /// onto.
    pub(crate) fn pipeline_telemetry(&self) -> adapcc_telemetry::Telemetry {
        self.options
            .telemetry
            .at_offset(self.init_report.total().as_secs())
    }

    /// Executes a raw request batch on the session's fabric (capacity
    /// factors and any armed fault schedule included), without the
    /// recovery loop. Chaos harnesses and tests use it to observe raw
    /// classified faults.
    pub fn run_batch(&self, requests: &[ExecutionRequest<'_>]) -> Result<BatchReport, AdapCCError> {
        self.executor().try_execute(requests)
    }

    /// Zero-skew execution time of a cached strategy (measured once).
    pub(crate) fn cached_exec_secs(&mut self, key: &StrategyKey, strategy: &Strategy) -> f64 {
        if let Some(t) = self.exec_cache.get(key) {
            return *t;
        }
        let t = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .execute(&[ExecutionRequest::timing(
                strategy,
                ByteSize::from_bytes(key.tensor),
            )])
            .finish
            .as_secs();
        self.exec_cache.insert(key.clone(), t);
        t
    }

    /// The ski-rental buy estimate for one strategy, with a *measured*
    /// phase-2 unit: one full-tensor broadcast is executed once on the
    /// current fabric and its wall time cached (estimation by
    /// measurement, like everything else in AdapCC).
    pub(crate) fn buy_estimate(&mut self, strategy: &Strategy, tensor: ByteSize) -> BuyEstimate {
        let key = (strategy.primitive, tensor.as_u64(), self.scope_id());
        if let Some(est) = self.estimates.get(&key) {
            return est.clone();
        }
        let scope_workers = self.scope_workers();
        let probe_root = scope_workers[scope_workers.len() / 2];
        let bstrat = self
            .strategy_for_key(&StrategyKey {
                primitive: Primitive::Broadcast,
                tensor: tensor.as_u64(),
                root: Some(probe_root),
                scope: self.active_scope.clone(),
            })
            .clone();
        let unit = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .execute(&[ExecutionRequest::timing(&bstrat, tensor)])
            .finish
            .as_secs();
        let est =
            BuyEstimate::new(&self.topo, &self.profile, strategy, tensor).with_phase2_unit(unit);
        self.estimates.insert(key, est.clone());
        est
    }

    /// A *modeled* buy estimate priced at `kind`'s traffic volume —
    /// the composite entry points use it, so consulting the
    /// coordinator never adds a probe broadcast (which would perturb
    /// plan-cache counters and the strategy memo).
    pub(crate) fn modeled_buy_estimate(
        &mut self,
        kind: Primitive,
        strategy: &Strategy,
        tensor: ByteSize,
    ) -> BuyEstimate {
        let key = (kind, tensor.as_u64(), self.scope_id());
        if let Some(est) = self.estimates.get(&key) {
            return est.clone();
        }
        let est =
            BuyEstimate::new(&self.topo, &self.profile, strategy, tensor).with_primitive(kind);
        self.estimates.insert(key, est.clone());
        est
    }

    /// The active scope's stable group id (`0` = world), used to keep
    /// per-group buy estimates from colliding across groups.
    pub(crate) fn scope_id(&self) -> u64 {
        self.active_scope.as_ref().map(|g| g.id()).unwrap_or(0)
    }

    /// Modeled solver latency for the re-synthesis work done since
    /// `before`: full cost if anything solved cold, the warm-start
    /// fraction if the cache seeded every solve, zero if every request
    /// was an exact hit (or nothing was synthesized).
    pub(crate) fn modeled_solving_since(&self, before: SynthTally) -> SimDuration {
        let t = self.synth_tally.since(before);
        if t.cold > 0 {
            crate::reconstruct::modeled_solve_cost(self.workers.len())
        } else if t.warm > 0 {
            crate::reconstruct::modeled_warm_solve_cost(self.workers.len())
        } else {
            SimDuration::ZERO
        }
    }
}
