//! Per-rank membership health and per-link flap quarantine.
//!
//! Exclusion used to be a one-way door: a rank confirmed dead was
//! removed from the job forever, even after its worker restarted. The
//! [`HealthMonitor`] closes the loop with a small state machine per
//! rank —
//!
//! ```text
//! Healthy -> Suspected -> Excluded -> Probation -> Healthy
//!               ^  |          |           |
//!               |  +-(heals)--+-(probes)--+-(relay-eligible again)
//! ```
//!
//! Excluded ranks are periodically health-probed on the session clock
//! (each probe charges [`HealthPolicy::probe_cost`]); after
//! [`HealthPolicy::probes_to_rejoin`] consecutive passing probes the
//! rank is re-admitted through the elastic scale-out path and serves a
//! probation period during which the relay coordinator will not assign
//! it relay duty.
//!
//! Links that flap repeatedly are quarantined with an exponentially
//! growing hold-down: the annealer sees their capacity collapsed to
//! [`QUARANTINE_FACTOR`] and routes around them. Strikes persist after
//! a quarantine expires — hysteresis, not amnesia — so a chronic
//! flapper earns successively longer hold-downs.

use std::collections::BTreeMap;
use std::fmt;

use adapcc_simnet::cluster::{LinkId, Rank};
use adapcc_simnet::time::{SimDuration, SimTime};

/// Capacity factor applied to quarantined links: small enough that the
/// synthesizer routes around them, non-zero so the fluid solver stays
/// well-conditioned.
pub const QUARANTINE_FACTOR: f64 = 1e-3;

/// Tuning knobs of the membership lifecycle.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Consecutive passing probes before an excluded rank is
    /// re-admitted.
    pub probes_to_rejoin: usize,
    /// Modeled cost of one health-probe round, charged to the session
    /// clock whenever at least one excluded rank is probed.
    pub probe_cost: SimDuration,
    /// Iterations a re-admitted rank spends relay-ineligible before it
    /// graduates back to `Healthy`.
    pub probation_iterations: u64,
    /// Distinct flap episodes on a link before it is quarantined.
    pub flap_threshold: usize,
    /// First quarantine hold-down; doubles per strike.
    pub quarantine_base: SimDuration,
    /// Ceiling on a single hold-down.
    pub quarantine_cap: SimDuration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            probes_to_rejoin: 2,
            probe_cost: SimDuration::from_millis(5.0),
            probation_iterations: 2,
            flap_threshold: 3,
            quarantine_base: SimDuration::from_secs(2.0),
            quarantine_cap: SimDuration::from_secs(60.0),
        }
    }
}

/// Where a rank sits in the membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankHealth {
    /// Full participant; relay-eligible.
    Healthy,
    /// Implicated by a classified fault but not yet confirmed dead.
    Suspected,
    /// Confirmed dead and removed from the job; probed for rejoin.
    Excluded,
    /// Re-admitted and participating, but relay-ineligible until it
    /// graduates.
    Probation,
}

impl fmt::Display for RankHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankHealth::Healthy => write!(f, "healthy"),
            RankHealth::Suspected => write!(f, "suspected"),
            RankHealth::Excluded => write!(f, "excluded"),
            RankHealth::Probation => write!(f, "probation"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RankEntry {
    state: RankHealth,
    /// Consecutive passing probes while `Excluded`.
    probe_streak: usize,
    /// Iteration at which the rank was re-admitted (valid in
    /// `Probation`).
    admitted_iteration: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct FlapEntry {
    /// Flap episodes since the last quarantine.
    episodes: usize,
    /// Collective iteration of the most recent counted episode: the
    /// retry loop re-observes the same flap several times within one
    /// collective, which must count once.
    last_episode: Option<u64>,
    /// Lifetime quarantines served; drives the exponential hold-down
    /// and survives expiry.
    strikes: u32,
    quarantined_until: Option<SimTime>,
}

/// Tracks rank lifecycle states and link flap quarantines for one
/// session.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    ranks: BTreeMap<Rank, RankEntry>,
    links: BTreeMap<LinkId, FlapEntry>,
}

impl HealthMonitor {
    /// A monitor with the given policy; every rank starts `Healthy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMonitor {
            policy,
            ranks: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Current lifecycle state of `rank` (unseen ranks are `Healthy`).
    pub fn state_of(&self, rank: Rank) -> RankHealth {
        self.ranks
            .get(&rank)
            .map_or(RankHealth::Healthy, |e| e.state)
    }

    fn entry(&mut self, rank: Rank) -> &mut RankEntry {
        self.ranks.entry(rank).or_insert(RankEntry {
            state: RankHealth::Healthy,
            probe_streak: 0,
            admitted_iteration: 0,
        })
    }

    /// Marks a rank implicated by a classified fault. Only healthy
    /// ranks move; returns true on a `Healthy -> Suspected` transition.
    pub fn note_suspected(&mut self, rank: Rank) -> bool {
        let e = self.entry(rank);
        if e.state == RankHealth::Healthy {
            e.state = RankHealth::Suspected;
            true
        } else {
            false
        }
    }

    /// Marks a rank confirmed dead and removed from the job.
    pub fn note_excluded(&mut self, rank: Rank) {
        let e = self.entry(rank);
        e.state = RankHealth::Excluded;
        e.probe_streak = 0;
    }

    /// Clears a suspicion that did not pan out (the fault healed or the
    /// rank was not confirmed dead).
    pub fn clear_suspected(&mut self, rank: Rank) {
        if let Some(e) = self.ranks.get_mut(&rank) {
            if e.state == RankHealth::Suspected {
                e.state = RankHealth::Healthy;
            }
        }
    }

    /// Returns every suspected rank to `Healthy` — called when a
    /// collective completes, proving the surviving suspects innocent.
    pub fn absolve(&mut self) {
        for e in self.ranks.values_mut() {
            if e.state == RankHealth::Suspected {
                e.state = RankHealth::Healthy;
            }
        }
    }

    /// Records one health-probe outcome for an excluded rank and
    /// returns true when the rank has accumulated enough consecutive
    /// passes to rejoin.
    pub fn note_probe(&mut self, rank: Rank, passed: bool) -> bool {
        let target = self.policy.probes_to_rejoin;
        let e = self.entry(rank);
        debug_assert_eq!(e.state, RankHealth::Excluded, "probing a non-excluded rank");
        if passed {
            e.probe_streak += 1;
        } else {
            e.probe_streak = 0;
        }
        e.probe_streak >= target
    }

    /// Marks a rank re-admitted at `iteration`; it enters `Probation`.
    pub fn note_admitted(&mut self, rank: Rank, iteration: u64) {
        let e = self.entry(rank);
        e.state = RankHealth::Probation;
        e.probe_streak = 0;
        e.admitted_iteration = iteration;
    }

    /// Graduates probation ranks whose probation period has elapsed by
    /// `iteration`; returns the ranks that just became `Healthy`.
    pub fn graduate(&mut self, iteration: u64) -> Vec<Rank> {
        let period = self.policy.probation_iterations;
        let mut out = Vec::new();
        for (r, e) in &mut self.ranks {
            if e.state == RankHealth::Probation
                && iteration.saturating_sub(e.admitted_iteration) >= period
            {
                e.state = RankHealth::Healthy;
                out.push(*r);
            }
        }
        out
    }

    /// Ranks currently serving probation (relay-ineligible).
    pub fn probation_ranks(&self) -> Vec<Rank> {
        self.ranks
            .iter()
            .filter(|(_, e)| e.state == RankHealth::Probation)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Ranks currently excluded (probed for rejoin).
    pub fn excluded_ranks(&self) -> Vec<Rank> {
        self.ranks
            .iter()
            .filter(|(_, e)| e.state == RankHealth::Excluded)
            .map(|(r, _)| *r)
            .collect()
    }

    // ---- link flap quarantine ----

    /// Records one flap episode on `link` during collective iteration
    /// `episode`. Repeat observations within the same iteration are
    /// deduplicated. When the link crosses the flap threshold it enters
    /// quarantine until `now + hold`, where the hold-down doubles per
    /// strike (capped); the hold is returned so the caller can account
    /// for the change.
    pub fn note_flap(&mut self, link: LinkId, episode: u64, now: SimTime) -> Option<SimDuration> {
        let threshold = self.policy.flap_threshold;
        let base = self.policy.quarantine_base;
        let cap = self.policy.quarantine_cap;
        let e = self.links.entry(link).or_default();
        if e.last_episode == Some(episode) {
            return None;
        }
        e.last_episode = Some(episode);
        e.episodes += 1;
        if e.episodes < threshold {
            return None;
        }
        e.episodes = 0;
        e.strikes += 1;
        let exponent = (e.strikes - 1).min(63);
        let hold = base.scale(2f64.powi(exponent as i32)).min(cap);
        e.quarantined_until = Some(now + hold);
        Some(hold)
    }

    /// Links under an active quarantine at `now`.
    pub fn quarantined_links(&self, now: SimTime) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|(_, e)| e.quarantined_until.is_some_and(|t| t > now))
            .map(|(l, _)| *l)
            .collect()
    }

    /// Clears quarantines that have run out by `now` (strikes persist)
    /// and returns the released links.
    pub fn expire_quarantines(&mut self, now: SimTime) -> Vec<LinkId> {
        let mut out = Vec::new();
        for (l, e) in &mut self.links {
            if e.quarantined_until.is_some_and(|t| t <= now) {
                e.quarantined_until = None;
                out.push(*l);
            }
        }
        out
    }

    /// Lifetime quarantine strikes recorded against `link`.
    pub fn strikes(&self, link: LinkId) -> u32 {
        self.links.get(&link).map_or(0, |e| e.strikes)
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(HealthPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walks_the_state_machine() {
        let mut m = HealthMonitor::default();
        let r = Rank(3);
        assert_eq!(m.state_of(r), RankHealth::Healthy);
        assert!(m.note_suspected(r));
        assert!(!m.note_suspected(r), "already suspected");
        m.note_excluded(r);
        assert_eq!(m.state_of(r), RankHealth::Excluded);
        assert_eq!(m.excluded_ranks(), vec![r]);
        // Two consecutive passes rejoin; a failure resets the streak.
        assert!(!m.note_probe(r, true));
        assert!(!m.note_probe(r, false));
        assert!(!m.note_probe(r, true));
        assert!(m.note_probe(r, true));
        m.note_admitted(r, 10);
        assert_eq!(m.state_of(r), RankHealth::Probation);
        assert_eq!(m.probation_ranks(), vec![r]);
        assert!(m.graduate(11).is_empty(), "probation lasts 2 iterations");
        assert_eq!(m.graduate(12), vec![r]);
        assert_eq!(m.state_of(r), RankHealth::Healthy);
    }

    #[test]
    fn suspicion_clears_only_from_suspected() {
        let mut m = HealthMonitor::default();
        m.note_suspected(Rank(0));
        m.clear_suspected(Rank(0));
        assert_eq!(m.state_of(Rank(0)), RankHealth::Healthy);
        m.note_excluded(Rank(1));
        m.clear_suspected(Rank(1));
        assert_eq!(m.state_of(Rank(1)), RankHealth::Excluded);
    }

    #[test]
    fn flaps_within_one_iteration_count_once() {
        let mut m = HealthMonitor::default();
        let l = LinkId(4);
        for _ in 0..10 {
            assert!(m.note_flap(l, 7, SimTime::ZERO).is_none());
        }
        assert!(m.note_flap(l, 8, SimTime::ZERO).is_none());
        // Third distinct episode quarantines.
        let hold = m.note_flap(l, 9, SimTime::ZERO).expect("quarantined");
        assert_eq!(hold, SimDuration::from_secs(2.0));
        assert_eq!(m.quarantined_links(SimTime::ZERO), vec![l]);
    }

    #[test]
    fn hold_down_doubles_per_strike_and_caps() {
        let mut m = HealthMonitor::new(HealthPolicy {
            flap_threshold: 1,
            quarantine_base: SimDuration::from_secs(2.0),
            quarantine_cap: SimDuration::from_secs(7.0),
            ..HealthPolicy::default()
        });
        let l = LinkId(0);
        let h1 = m.note_flap(l, 1, SimTime::ZERO).unwrap();
        let h2 = m.note_flap(l, 2, SimTime::ZERO).unwrap();
        let h3 = m.note_flap(l, 3, SimTime::ZERO).unwrap();
        assert_eq!(h1, SimDuration::from_secs(2.0));
        assert_eq!(h2, SimDuration::from_secs(4.0));
        assert_eq!(h3, SimDuration::from_secs(7.0), "capped");
        assert_eq!(m.strikes(l), 3);
    }

    #[test]
    fn hold_down_exponent_is_clamped() {
        // A pathological strike count must not overflow the scale.
        let mut m = HealthMonitor::new(HealthPolicy {
            flap_threshold: 1,
            quarantine_cap: SimDuration::from_secs(30.0),
            ..HealthPolicy::default()
        });
        let l = LinkId(1);
        let mut last = SimDuration::ZERO;
        for ep in 1..=200 {
            last = m.note_flap(l, ep, SimTime::ZERO).unwrap();
        }
        assert_eq!(last, SimDuration::from_secs(30.0));
        assert_eq!(m.strikes(l), 200);
    }

    #[test]
    fn expiry_releases_the_link_but_keeps_strikes() {
        let mut m = HealthMonitor::new(HealthPolicy {
            flap_threshold: 1,
            ..HealthPolicy::default()
        });
        let l = LinkId(2);
        let hold = m.note_flap(l, 1, SimTime::ZERO).unwrap();
        let after = SimTime::ZERO + hold;
        assert!(m.quarantined_links(after).is_empty(), "inclusive expiry");
        assert_eq!(m.expire_quarantines(after), vec![l]);
        assert_eq!(m.expire_quarantines(after), Vec::<LinkId>::new());
        assert_eq!(m.strikes(l), 1, "hysteresis, not amnesia");
        // The next episode quarantines immediately with a doubled hold.
        let h2 = m.note_flap(l, 2, after).unwrap();
        assert_eq!(h2, SimDuration::from_secs(4.0));
    }
}
