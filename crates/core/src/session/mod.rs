//! The top-level AdapCC session — the public API a training script
//! uses (paper Sec. VI-A mirrors it as `adapcc.init()` /
//! `adapcc.setup()` / `adapcc.allreduce()` / `adapcc.profile()`).
//!
//! [`AdapCC::init`] runs the detector and the profiler and caches
//! nothing else; strategies are synthesized lazily per
//! [`crate::collective::plan::StrategyKey`] and reused.
//! [`AdapCC::setup`] builds the transmission contexts. Every collective
//! entry point lowers a [`crate::collective::CollectiveSpec`] through
//! the staged pipeline (plan → relay → execute → assemble → report)
//! wrapped in the recovery loop; the adaptive entry point
//! [`AdapCC::allreduce_adaptive`] consults the relay
//! [`crate::relay::Coordinator`] each iteration and runs
//! the phase-1 / phase-2 protocol when the ski-rental rule says to
//! proceed without stragglers. [`AdapCC::reprofile`] is the in-place
//! graph reconstruction: profile → re-solve → re-set-up, never
//! restarting the job.
//!
//! Module layout:
//!
//! - [`lifecycle`](self) — init, setup, fault arming, accessors
//! - `planning` — lazy synthesis, the plan cache, buy estimates
//! - `recovery` — the retry / exclusion loop and its policy
//! - `health` — the membership state machine (rejoin probing,
//!   probation, flap quarantine)
//! - `scaling` — reprofile, reconstruction, elastic scale-out
//! - `collectives` — the public entry points (one spec each)

mod collectives;
mod groups;
mod health;
mod lifecycle;
mod planning;
mod recovery;
mod scaling;
#[cfg(test)]
mod tests;

use std::collections::{BTreeMap, HashMap};

use adapcc_plancache::{PlanCache, PlanCacheConfig};
use adapcc_profile::profiler::{LinkProfile, Profiler};
use adapcc_simnet::cluster::{Cluster, LinkId, Rank};
use adapcc_simnet::faults::FaultSchedule;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_synth::solver::SynthConfig;
use adapcc_synth::strategy::Strategy;
use adapcc_topo::detect::{DetectionReport, Detector};
use adapcc_topo::logical::LogicalTopology;

pub use crate::collective::report::IterationReport;
pub use groups::GroupHandle;
pub use health::{HealthMonitor, HealthPolicy, RankHealth, QUARANTINE_FACTOR};
pub use recovery::{RecoveryEvent, RecoveryPolicy};
pub use scaling::ScaleReport;

use adapcc_synth::group::ProcessGroup;

use crate::collective::plan::StrategyKey;
use crate::communicator::Communicator;
use crate::reconstruct::ReconstructReport;
use crate::relay::{BuyEstimate, Coordinator, RelayConfig};

/// Initialization options.
#[derive(Debug, Clone)]
pub struct InitOptions {
    /// Parallel sub-collectives per strategy (`M`, paper default 4).
    pub parallelism: usize,
    /// Seed for every stochastic component (probing noise, annealer,
    /// RPC jitter).
    pub seed: u64,
    /// Relay-control configuration.
    pub relay: RelayConfig,
    /// Relative bandwidth change that triggers re-synthesis on
    /// re-profiling.
    pub resynth_threshold: f64,
    /// Synthesizer effort.
    pub synth: SynthConfig,
    /// Plan-cache behavior: exact fingerprint hits skip the solver,
    /// near misses warm-start it. Enabled (memory-only) by default;
    /// see [`PlanCacheConfig::disabled`] for the cold baseline and
    /// [`PlanCacheConfig::on_disk`] for a persistent tier.
    pub plan_cache: PlanCacheConfig,
    /// Telemetry sink threaded through every pipeline phase (detect,
    /// profile, synthesize, execute, relay). Disabled by default; an
    /// enabled sink records phase spans on one stitched timeline plus
    /// per-link flow records from the executor.
    pub telemetry: adapcc_telemetry::Telemetry,
    /// Shared cross-job plan service. When set, synthesis requests
    /// resolve through the service's sharded store with single-flight
    /// admission instead of the private [`plan_cache`](Self::plan_cache)
    /// tier, so concurrent sessions (jobs) share every solve. `None`
    /// (the default) keeps the per-session cache behavior.
    pub plan_service: Option<std::sync::Arc<adapcc_planserve::PlanService>>,
}

impl Default for InitOptions {
    fn default() -> Self {
        InitOptions {
            parallelism: 4,
            seed: 0,
            relay: RelayConfig::default(),
            resynth_threshold: 0.15,
            synth: SynthConfig::default(),
            plan_cache: PlanCacheConfig::default(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
            plan_service: None,
        }
    }
}

/// What initialization cost (detection + profiling, charged before
/// training starts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitReport {
    /// Topology detection time (constant in job scale).
    pub detection: SimDuration,
    /// First profiling pass.
    pub profiling: SimDuration,
}

impl InitReport {
    /// Total initialization time.
    pub fn total(&self) -> SimDuration {
        self.detection + self.profiling
    }
}

/// Running totals of how synthesis requests were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct SynthTally {
    /// Cold solves (full candidate generation + anneal).
    pub(crate) cold: u64,
    /// Warm starts (cached seed + chunk sweep + polish anneal).
    pub(crate) warm: u64,
    /// Exact cache hits (solver skipped).
    pub(crate) hit: u64,
}

impl SynthTally {
    pub(crate) fn since(&self, before: SynthTally) -> SynthTally {
        SynthTally {
            cold: self.cold - before.cold,
            warm: self.warm - before.warm,
            hit: self.hit - before.hit,
        }
    }
}

/// The AdapCC session over one cluster.
///
/// # Examples
///
/// ```
/// use adapcc::{AdapCC, InitOptions};
/// use adapcc_simnet::cluster::Cluster;
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let mut cc = AdapCC::init(&cluster, InitOptions::default());
/// cc.setup();
/// let report = cc
///     .allreduce(ByteSize::from_mib(16), &Default::default(), None)
///     .expect("healthy fabric");
/// assert!(report.finish.as_secs() > 0.0);
/// ```
#[derive(Debug)]
pub struct AdapCC<'c> {
    pub(crate) cluster: &'c Cluster,
    pub(crate) options: InitOptions,
    pub(crate) detection: DetectionReport,
    pub(crate) topo: LogicalTopology,
    pub(crate) profile: LinkProfile,
    pub(crate) init_report: InitReport,
    pub(crate) communicator: Communicator,
    pub(crate) coordinator: Coordinator,
    /// Per-worker-set strategy memo, cleared on every worker-set or
    /// profile change; keyed by the canonical [`StrategyKey`].
    pub(crate) strategies: HashMap<StrategyKey, Strategy>,
    /// Fingerprinted cross-reconstruction plan store. Unlike
    /// `strategies` (a per-worker-set memo cleared on every change),
    /// the cache is keyed by content and survives `set_workers`,
    /// reprofiles and exclusions — returning to a previously-seen
    /// state hits.
    pub(crate) plan_cache: PlanCache,
    /// How the solver was engaged since session start (cold solves,
    /// warm starts, exact hits); reconstruction paths diff it around
    /// their re-synthesis loops to charge the matching modeled cost.
    pub(crate) synth_tally: SynthTally,
    /// Ski-rental buy estimates keyed by (primitive, tensor bytes,
    /// scope group id — `0` for the world scope).
    pub(crate) estimates: HashMap<(adapcc_synth::primitive::Primitive, u64, u64), BuyEstimate>,
    /// Zero-skew execution time per cached strategy: timing-only
    /// wait-all collectives reuse it instead of re-simulating (the
    /// collective itself is deterministic; only readiness varies).
    pub(crate) exec_cache: HashMap<StrategyKey, f64>,
    pub(crate) workers: Vec<Rank>,
    /// The process group the in-flight collective is scoped to
    /// (`None` = the whole job). Set by [`GroupHandle`] entry points
    /// around the pipeline and restored on exit, so the plan/relay/
    /// execute path reads one consistent scope per attempt.
    pub(crate) active_scope: Option<ProcessGroup>,
    /// Registry of every process group the session has planned for,
    /// keyed by stable group id. Exclusion consults it to invalidate
    /// exactly the groups containing a dead rank.
    pub(crate) groups: BTreeMap<u64, ProcessGroup>,
    /// Declared concurrency set: ids of groups expected to run their
    /// collectives at the same time. Folded into plan fingerprints so
    /// a strategy solved for one concurrency regime never serves
    /// another.
    pub(crate) concurrent: Vec<u64>,
    pub(crate) iteration: u64,
    pub(crate) fabric_factors: Vec<(LinkId, f64)>,
    pub(crate) profile_period: Option<u64>,
    pub(crate) last_reconstruct: Option<ReconstructReport>,
    pub(crate) fault_schedule: Option<FaultSchedule>,
    pub(crate) session_clock: SimTime,
    pub(crate) recovery: RecoveryPolicy,
    pub(crate) recovery_log: Vec<RecoveryEvent>,
    pub(crate) pending_probe_losses: Vec<(LinkId, u32)>,
    /// Membership lifecycle: per-rank health states (rejoin probing,
    /// probation) and per-link flap quarantines.
    pub(crate) health: HealthMonitor,
}

impl<'c> AdapCC<'c> {
    /// Detects the topology, profiles the links, and returns a ready
    /// session (the paper's `adapcc.init()`).
    pub fn init(cluster: &'c Cluster, options: InitOptions) -> Self {
        let mut detector =
            Detector::new(cluster, options.seed).with_telemetry(options.telemetry.clone());
        let detection = detector.run();
        let topo = detection.logical_topology(cluster);
        let prof = Profiler::new(cluster, &topo, options.seed)
            .with_telemetry(options.telemetry.at_offset(detection.elapsed.as_secs()))
            .run();
        let init_report = InitReport {
            detection: detection.elapsed,
            profiling: prof.elapsed,
        };
        let workers = (0..cluster.gpu_count()).map(Rank).collect();
        let plan_cache = PlanCache::new(options.plan_cache.clone());
        AdapCC {
            cluster,
            coordinator: Coordinator::new(options.seed)
                .with_config(options.relay.clone())
                .with_telemetry(options.telemetry.clone()),
            options,
            detection,
            topo,
            profile: prof.links,
            init_report,
            communicator: Communicator::new(),
            strategies: HashMap::new(),
            plan_cache,
            synth_tally: SynthTally::default(),
            estimates: HashMap::new(),
            exec_cache: HashMap::new(),
            workers,
            active_scope: None,
            groups: BTreeMap::new(),
            concurrent: Vec::new(),
            iteration: 0,
            fabric_factors: Vec::new(),
            profile_period: None,
            last_reconstruct: None,
            fault_schedule: None,
            session_clock: SimTime::ZERO,
            recovery: RecoveryPolicy::default(),
            recovery_log: Vec::new(),
            pending_probe_losses: Vec::new(),
            health: HealthMonitor::default(),
        }
    }
}
