//! First-class process-group scopes over the session.
//!
//! [`AdapCC::group`] canonicalizes a member set into a
//! [`ProcessGroup`] and returns a [`GroupHandle`] whose collective
//! methods lower through the *same* CollectiveSpec pipeline as the
//! world-scoped entry points — the handle pins the session's active
//! scope around the call, so planning keys every stage strategy by the
//! group, synthesis solves over the group's members, and execution
//! runs on the shared fabric. A group spanning the full worker set
//! normalizes to the unscoped path, bit-identical to calling the
//! session directly.
//!
//! [`AdapCC::declare_concurrent`] registers which groups run their
//! collectives at the same time; the concurrency set is folded into
//! plan fingerprints (see `planning.rs`) so a strategy solved for one
//! co-scheduling regime never serves another.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::group::{GroupAxis, ProcessGroup};

use crate::collective::report::IterationReport;
use crate::error::AdapCCError;
use crate::session::AdapCC;

impl<'c> AdapCC<'c> {
    /// A collective scope over `members` (axis
    /// [`GroupAxis::World`]). Members are canonicalized — sorted,
    /// deduplicated — and must all be part of the job. A group covering
    /// the full worker set normalizes to the unscoped path: its
    /// collectives are bit-identical to calling the session directly.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] when `members` is empty
    /// or contains a rank outside the current worker set.
    pub fn group<'h>(&'h mut self, members: &[Rank]) -> Result<GroupHandle<'h, 'c>, AdapCCError> {
        self.group_on(GroupAxis::World, members)
    }

    /// [`group`](Self::group) with an explicit parallelism-axis tag
    /// (DP/TP/PP/EP). The axis participates in the group id, so the
    /// same member set on two axes is two distinct groups.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] when `members` is empty
    /// or contains a rank outside the current worker set.
    pub fn group_on<'h>(
        &'h mut self,
        axis: GroupAxis,
        members: &[Rank],
    ) -> Result<GroupHandle<'h, 'c>, AdapCCError> {
        let group = ProcessGroup::canonical_with_axis(axis, members)
            .map_err(|e| AdapCCError::InvalidRequest(e.to_string()))?;
        if let Some(outside) = group.members().iter().find(|r| !self.workers.contains(r)) {
            return Err(AdapCCError::InvalidRequest(format!(
                "{outside} is not part of the job (excluded or never admitted)"
            )));
        }
        // The full worker set IS the world: collapse to the unscoped
        // path so full-set groups stay bit-identical to direct calls.
        let scope = if group.members() == self.workers.as_slice() {
            None
        } else {
            self.groups.insert(group.id(), group.clone());
            Some(group)
        };
        Ok(GroupHandle { cc: self, scope })
    }

    /// Declares that these groups run their collectives concurrently.
    /// Each group is registered, and the set's ids are folded into the
    /// plan fingerprint of every group-scoped solve that belongs to it
    /// (see `planning.rs`), so plans solved under one co-scheduling
    /// regime never serve another. Replaces any previous declaration;
    /// an empty slice clears it.
    pub fn declare_concurrent(&mut self, groups: &[ProcessGroup]) {
        let mut ids: Vec<u64> = groups.iter().map(ProcessGroup::id).collect();
        ids.sort_unstable();
        ids.dedup();
        for g in groups {
            self.groups.insert(g.id(), g.clone());
        }
        self.concurrent = ids;
    }

    /// The registered process groups, keyed by stable group id.
    pub fn registered_groups(&self) -> &BTreeMap<u64, ProcessGroup> {
        &self.groups
    }

    /// The declared concurrency set (sorted, deduplicated group ids);
    /// empty when no concurrency has been declared.
    pub fn concurrent_ids(&self) -> &[u64] {
        &self.concurrent
    }

    /// The workers the in-flight collective spans: the active group's
    /// members intersected with the live worker set, or every worker
    /// when unscoped. Intersecting (rather than trusting the group
    /// verbatim) keeps a mid-recovery retry from planning over a rank
    /// that was just excluded.
    pub(crate) fn scope_workers(&self) -> Vec<Rank> {
        match &self.active_scope {
            Some(g) => self
                .workers
                .iter()
                .copied()
                .filter(|r| g.contains(*r))
                .collect(),
            None => self.workers.clone(),
        }
    }

    /// Runs `f` with the session's active scope pinned to `scope`,
    /// restoring the previous scope afterwards (also on error).
    pub(crate) fn with_scope<T>(
        &mut self,
        scope: Option<ProcessGroup>,
        f: impl FnOnce(&mut Self) -> T,
    ) -> T {
        let prev = std::mem::replace(&mut self.active_scope, scope);
        let out = f(self);
        self.active_scope = prev;
        out
    }
}

/// A borrowed collective scope: every method mirrors the session entry
/// point of the same name, restricted to the group's members. Created
/// by [`AdapCC::group`] / [`AdapCC::group_on`].
#[derive(Debug)]
pub struct GroupHandle<'h, 'c> {
    cc: &'h mut AdapCC<'c>,
    /// `None` when the group spans the full worker set (world path).
    scope: Option<ProcessGroup>,
}

impl<'h, 'c> GroupHandle<'h, 'c> {
    /// The canonical group this handle scopes to, or `None` when it
    /// normalized to the full worker set.
    pub fn process_group(&self) -> Option<&ProcessGroup> {
        self.scope.as_ref()
    }

    fn scoped(
        &mut self,
        f: impl FnOnce(&mut AdapCC<'c>) -> Result<IterationReport, AdapCCError>,
    ) -> Result<IterationReport, AdapCCError> {
        if let Some(g) = &self.scope {
            self.cc
                .options
                .telemetry
                .add_group_counter(&g.label(), "collectives", 1.0);
        }
        let scope = self.scope.clone();
        self.cc.with_scope(scope, f)
    }

    /// Group-scoped [`AdapCC::allreduce`].
    ///
    /// # Errors
    ///
    /// As the session entry point.
    pub fn allreduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.allreduce(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::allreduce_adaptive`].
    ///
    /// # Errors
    ///
    /// As the session entry point.
    pub fn allreduce_adaptive(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.allreduce_adaptive(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::reduce`].
    ///
    /// # Errors
    ///
    /// As the session entry point.
    pub fn reduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.reduce(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::broadcast`].
    ///
    /// # Errors
    ///
    /// As the session entry point; additionally rejects a `root`
    /// outside the group.
    pub fn broadcast(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.check_root(root)?;
        self.scoped(|cc| cc.broadcast(root, tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::alltoall`].
    ///
    /// # Errors
    ///
    /// As the session entry point.
    pub fn alltoall(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.alltoall(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::allgather`].
    ///
    /// # Errors
    ///
    /// As the session entry point.
    pub fn allgather(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.allgather(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::reduce_scatter`].
    ///
    /// # Errors
    ///
    /// As the session entry point (the tensor must shard over the
    /// *group's* size, not the job's).
    pub fn reduce_scatter(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.scoped(|cc| cc.reduce_scatter(tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::gather`].
    ///
    /// # Errors
    ///
    /// As the session entry point; additionally rejects a `root`
    /// outside the group.
    pub fn gather(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.check_root(root)?;
        self.scoped(|cc| cc.gather(root, tensor, ready, inputs))
    }

    /// Group-scoped [`AdapCC::scatter`].
    ///
    /// # Errors
    ///
    /// As the session entry point; additionally rejects a `root`
    /// outside the group.
    pub fn scatter(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.check_root(root)?;
        self.scoped(|cc| cc.scatter(root, tensor, ready, inputs))
    }

    fn check_root(&self, root: Rank) -> Result<(), AdapCCError> {
        if let Some(g) = &self.scope {
            if !g.contains(root) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "root {root} is not a member of group {g}"
                )));
            }
        }
        Ok(())
    }
}
