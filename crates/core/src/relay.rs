//! Adaptive relay control (paper Sec. IV-C).
//!
//! A coordinator on rank 0 collects tensor-ready times from every
//! worker (a small RPC each iteration) and, every 5 ms cycle, chooses
//! between:
//!
//! 1. **waiting** for all workers to become ready and running the full
//!    collective, or
//! 2. **proceeding**: a *phase-1* partial collective among the ready
//!    workers — with non-ready workers' GPUs used as forwarding /
//!    aggregating **relays** on the very same graph (behaviour tuples,
//!    no reconstruction) — followed by a *phase-2* broadcast of the
//!    late workers' tensors and a local combine, so the final result is
//!    numerically the same tensor a full collective would produce.
//!
//! The choice is the break-even rule of the ski-rental problem
//! (2-competitive): wait until the accumulated waiting time exceeds the
//! estimated cost of buying (phase 1 + phase 2), estimated as data
//! volume over accumulated graph bandwidth, exactly as the paper
//! prescribes. Workers still missing `T_fault` = 5x the fastest
//! worker's lead after phase 1 are declared faulty and excluded, and
//! the data loader is told to re-shard (fault tolerance without
//! restarting the job).

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::rng::seeded_rng;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::strategy::Strategy;
use adapcc_topo::logical::LogicalTopology;

use crate::error::FaultReport;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Decision cycle (paper: 5 ms).
    pub cycle: SimDuration,
    /// `T_fault` as a multiple of the fastest worker's lead (paper: 5).
    pub fault_multiplier: f64,
    /// Floor for the fault timeout, so near-simultaneous arrivals do
    /// not trip it.
    pub fault_floor: SimDuration,
    /// Relay control can be disabled to emulate always-wait libraries.
    pub enabled: bool,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            cycle: SimDuration::from_millis(5.0),
            fault_multiplier: 5.0,
            fault_floor: SimDuration::from_millis(50.0),
            enabled: true,
        }
    }
}

/// Latency model of the worker-coordinator relay negotiation RPC
/// (paper Fig. 19(d): p90 below 1.5 ms).
#[derive(Debug, Clone)]
pub struct RpcModel {
    base: SimDuration,
    jitter: SimDuration,
}

impl Default for RpcModel {
    fn default() -> Self {
        RpcModel {
            base: SimDuration::from_micros(350.0),
            jitter: SimDuration::from_micros(450.0),
        }
    }
}

impl RpcModel {
    /// One sampled round-trip: base network latency plus heavy-ish
    /// jitter from host scheduling.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> SimDuration {
        let u: f64 = rng.gen::<f64>();
        // Squash toward small values with an occasional long tail.
        let factor = if u > 0.97 { 1.0 + (u - 0.97) * 60.0 } else { u };
        self.base + self.jitter.scale(factor)
    }
}

/// What the coordinator decided for one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// Wait for everyone; the collective starts when the slowest
    /// worker is ready.
    WaitAll {
        /// When the last worker became ready.
        start: SimTime,
    },
    /// Proceed with a partial collective.
    Partial {
        /// Phase-1 trigger instant.
        start: SimTime,
        /// Ready workers participating in phase 1.
        ready: Vec<Rank>,
        /// Non-ready workers assigned as relays.
        relays: Vec<Rank>,
    },
}

/// Per-iteration relay statistics, aggregated across training for
/// Fig. 15.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RelayStats {
    /// Iterations observed.
    pub iterations: u64,
    /// Times each rank served as a relay.
    pub relay_counts: BTreeMap<usize, u64>,
    /// Sampled coordinator RPC delays (Fig. 19(d)).
    pub rpc_delays_ms: Vec<f64>,
}

impl RelayStats {
    /// Probability of each rank being chosen as a relay.
    pub fn relay_probability(&self, rank: Rank) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        *self.relay_counts.get(&rank.0).unwrap_or(&0) as f64 / self.iterations as f64
    }
}

/// The rank-0 coordinator.
#[derive(Debug)]
pub struct Coordinator {
    config: RelayConfig,
    rpc: RpcModel,
    rng: ChaCha8Rng,
    stats: RelayStats,
    telemetry: adapcc_telemetry::Telemetry,
    /// Executor-level faults reported by the session's recovery loop
    /// (suspects already narrowed to confirmed-dead ranks); merged into
    /// the next readiness-based fault detection so both detectors share
    /// one exclusion path.
    pending_exec_faults: Vec<FaultReport>,
    /// Ranks the membership lifecycle bars from relay assignment
    /// (probation: recently re-admitted, not yet fully trusted). Their
    /// late data still arrives in phase 2 — they are simply never
    /// *assigned* as relays.
    relay_ineligible: Vec<Rank>,
}

impl Coordinator {
    /// A coordinator with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        Coordinator {
            config: RelayConfig::default(),
            rpc: RpcModel::default(),
            rng: seeded_rng(seed ^ 0xC00D),
            stats: RelayStats::default(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
            pending_exec_faults: Vec::new(),
            relay_ineligible: Vec::new(),
        }
    }

    /// Replaces the set of ranks barred from relay assignment (the
    /// session keeps this in sync with its probation list).
    pub fn set_relay_ineligible(&mut self, ranks: Vec<Rank>) {
        self.relay_ineligible = ranks;
    }

    /// Ranks currently barred from relay assignment.
    pub fn relay_ineligible(&self) -> &[Rank] {
        &self.relay_ineligible
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: RelayConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry sink; each [`Coordinator::decide`] call then
    /// accounts its accumulated waiting time (`relay.wait_secs`) and,
    /// on a buy, the estimated transmit cost (`relay.transmit_secs`) —
    /// the two sides of the ski-rental break-even rule.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// The ski-rental decision for one iteration.
    ///
    /// `ready` maps every (live) worker to the instant its tensor is
    /// ready; workers missing from the map are treated as indefinitely
    /// delayed (fault candidates). `estimate` prices the buy option.
    ///
    /// # Panics
    ///
    /// Panics if `ready` is empty or the root is not among the workers.
    pub fn decide(
        &mut self,
        all_workers: &[Rank],
        root: Rank,
        ready: &BTreeMap<Rank, SimTime>,
        estimate: &BuyEstimate,
    ) -> Decision {
        assert!(!ready.is_empty(), "no worker ever becomes ready");
        assert!(all_workers.contains(&root), "root must be a worker");
        self.stats.iterations += 1;
        let rpc = self.rpc.sample(&mut self.rng);
        self.stats.rpc_delays_ms.push(rpc.as_millis());

        let first = ready.values().copied().min().expect("non-empty");
        let last_known = ready.values().copied().max().expect("non-empty");
        let all_ready_known = ready.len() == all_workers.len();
        if !self.config.enabled {
            // Always-wait baseline policy. Workers that never report
            // would hang a real library; the caller models that case.
            self.telemetry.add_counter("relay.decisions", 1.0);
            self.telemetry.add_counter("relay.wait_all", 1.0);
            self.telemetry.add_counter(
                "relay.wait_secs",
                last_known.duration_since(first).as_secs(),
            );
            return Decision::WaitAll {
                start: last_known + rpc,
            };
        }

        // Walk decision cycles from the first arrival.
        let mut k = 0u64;
        loop {
            let now = first + self.config.cycle.scale(k as f64);
            let ready_now: Vec<Rank> = all_workers
                .iter()
                .copied()
                .filter(|r| ready.get(r).is_some_and(|t| *t <= now))
                .collect();
            if all_ready_known && ready_now.len() == all_workers.len() {
                self.telemetry.add_counter("relay.decisions", 1.0);
                self.telemetry.add_counter("relay.wait_all", 1.0);
                self.telemetry.add_counter(
                    "relay.wait_secs",
                    last_known.duration_since(first).as_secs(),
                );
                return Decision::WaitAll {
                    start: last_known + rpc,
                };
            }
            let waiting = now.duration_since(first);
            // Buying requires the root to be ready (the partial result
            // must land somewhere) and at least two participants.
            if ready_now.len() >= 2 && ready_now.contains(&root) {
                let late_now: Vec<Rank> = all_workers
                    .iter()
                    .copied()
                    .filter(|r| !ready_now.contains(r))
                    .collect();
                let buy = estimate.cost_for(&ready_now, &late_now);
                if waiting >= buy {
                    let relays: Vec<Rank> = all_workers
                        .iter()
                        .copied()
                        .filter(|r| !ready_now.contains(r) && !self.relay_ineligible.contains(r))
                        .collect();
                    for r in &relays {
                        *self.stats.relay_counts.entry(r.0).or_insert(0) += 1;
                    }
                    self.telemetry.add_counter("relay.decisions", 1.0);
                    self.telemetry.add_counter("relay.buys", 1.0);
                    self.telemetry
                        .add_counter("relay.wait_secs", waiting.as_secs());
                    self.telemetry
                        .add_counter("relay.transmit_secs", buy.as_secs());
                    return Decision::Partial {
                        start: now + rpc,
                        ready: ready_now,
                        relays,
                    };
                }
            }
            k += 1;
            // Safety valve: a worker that never reports cannot hold the
            // loop forever; after the fault horizon, proceed partially
            // or (if impossible) with whoever is known.
            if k > 100_000 {
                let relays: Vec<Rank> = all_workers
                    .iter()
                    .copied()
                    .filter(|r| !ready_now.contains(r) && !self.relay_ineligible.contains(r))
                    .collect();
                self.telemetry.add_counter("relay.decisions", 1.0);
                self.telemetry.add_counter("relay.buys", 1.0);
                self.telemetry
                    .add_counter("relay.wait_secs", waiting.as_secs());
                return Decision::Partial {
                    start: now + rpc,
                    ready: ready_now,
                    relays,
                };
            }
        }
    }

    /// Hands the coordinator an executor-level fault whose suspects the
    /// session has already narrowed to confirmed-dead ranks. They join
    /// the next [`Coordinator::detect_faults`] verdict, so
    /// readiness-based and executor-based detection exclude workers
    /// through the same path.
    pub fn note_executor_fault(&mut self, report: FaultReport) {
        self.pending_exec_faults.push(report);
    }

    /// Executor faults queued for the next detection pass.
    pub fn pending_executor_faults(&self) -> &[FaultReport] {
        &self.pending_exec_faults
    }

    /// Fault detection after phase 1 (paper: `T_fault` = 5x the
    /// duration since the fastest worker became ready). Returns the
    /// workers to exclude — readiness-based stragglers merged with any
    /// executor-reported fatalities.
    pub fn detect_faults(
        &mut self,
        all_workers: &[Rank],
        ready: &BTreeMap<Rank, SimTime>,
        phase1_end: SimTime,
    ) -> Vec<Rank> {
        let Some(first) = ready.values().copied().min() else {
            return self.merge_exclusions(all_workers.to_vec());
        };
        let lead = phase1_end.duration_since(first);
        let horizon = phase1_end
            + lead
                .scale(self.config.fault_multiplier)
                .max(self.config.fault_floor);
        let late = all_workers
            .iter()
            .copied()
            .filter(|r| match ready.get(r) {
                Some(t) => *t > horizon,
                None => true,
            })
            .collect();
        self.merge_exclusions(late)
    }

    /// The shared exclusion path: readiness-based stragglers plus the
    /// suspects of every queued executor fault, sorted and deduplicated.
    fn merge_exclusions(&mut self, mut late: Vec<Rank>) -> Vec<Rank> {
        for report in self.pending_exec_faults.drain(..) {
            late.extend(report.suspects);
        }
        late.sort_unstable();
        late.dedup();
        late
    }
}

/// Prices the "buy" option of the ski-rental rule: phase-1 volume
/// (partial collective among the ready workers) over the accumulated
/// graph bandwidth (the paper's `S / B`), plus phase-2 volume (late
/// tensors broadcast) over the *late workers'* profiled NIC capacity —
/// phase-2 traffic originates at the stragglers, so their egress
/// ports, not the whole graph, bound it.
#[derive(Debug, Clone)]
pub struct BuyEstimate {
    tensor: ByteSize,
    primitive: Primitive,
    graph_bandwidth: f64,
    /// Profiled egress bandwidth per instance (bytes/sec).
    instance_egress: BTreeMap<usize, f64>,
    /// Rank -> instance index.
    rank_instance: BTreeMap<usize, usize>,
    /// Measured wall time of one full-tensor phase-2 broadcast on this
    /// graph, when the caller has profiled it (the session measures it
    /// once per strategy — estimation by measurement, in AdapCC's own
    /// spirit).
    phase2_unit_secs: Option<f64>,
}

impl BuyEstimate {
    /// An estimate for one collective on one strategy graph.
    ///
    /// # Panics
    ///
    /// Panics if the strategy uses an unprofiled edge.
    pub fn new(
        topo: &LogicalTopology,
        profile: &LinkProfile,
        strategy: &Strategy,
        tensor: ByteSize,
    ) -> Self {
        use adapcc_topo::logical::{EdgeKind, LogicalNode};
        // Accumulate profiled bandwidth over the distinct *network*
        // edges of the strategy graph; intra-only graphs fall back to
        // the full edge set.
        let mut b_net = 0.0;
        let mut b_all = 0.0;
        for sub in &strategy.subs {
            for e in sub.edges() {
                let ab = profile.get(e).expect("profiled edge");
                let bw = ab.port_bandwidth().as_bytes_per_sec();
                b_all += bw;
                if topo.edge(e).kind == EdgeKind::Network {
                    b_net += bw;
                }
            }
        }
        let graph_bandwidth = if b_net > 0.0 { b_net } else { b_all };
        // Per-instance egress: the best profiled outgoing network edge.
        let mut instance_egress = BTreeMap::new();
        let mut rank_instance = BTreeMap::new();
        for r in topo.gpu_nodes() {
            let inst = adapcc_synth::solver::instance_of(topo, r).0;
            rank_instance.insert(r.0, inst);
            instance_egress.entry(inst).or_insert_with(|| {
                let nic = LogicalNode::Nic(adapcc_simnet::cluster::InstanceId(inst));
                let mut best = graph_bandwidth.max(1.0);
                for e in topo.edges_from(nic) {
                    if topo.edge(*e).kind == EdgeKind::Network {
                        if let Some(ab) = profile.get(*e) {
                            best = ab.port_bandwidth().as_bytes_per_sec();
                            break;
                        }
                    }
                }
                best
            });
        }
        BuyEstimate {
            tensor,
            primitive: strategy.primitive,
            graph_bandwidth: graph_bandwidth.max(1.0),
            instance_egress,
            rank_instance,
            phase2_unit_secs: None,
        }
    }

    /// Prices phase 1 with `primitive`'s volume formula instead of the
    /// strategy's own primitive. Composite collectives execute stages
    /// of base primitives (AllGather = per-GPU Broadcasts), but the
    /// ski-rental buy must be priced at the *composite's* traffic
    /// volume, not one stage sub-collective's.
    pub fn with_primitive(mut self, primitive: Primitive) -> Self {
        self.primitive = primitive;
        self
    }

    /// Records a measured single-late-tensor phase-2 cost; `cost_for`
    /// then prices phase 2 as `unit x n_late` (conservative: concurrent
    /// late broadcasts contend on every receiver's ingress).
    pub fn with_phase2_unit(mut self, secs: f64) -> Self {
        self.phase2_unit_secs = Some(secs.max(0.0));
        self
    }

    /// Builds an estimate from explicit parameters (tests, ablations):
    /// one bandwidth bounds both phases.
    pub fn from_parts(tensor: ByteSize, primitive: Primitive, aggregate_bandwidth: f64) -> Self {
        BuyEstimate {
            tensor,
            primitive,
            graph_bandwidth: aggregate_bandwidth.max(1.0),
            instance_egress: BTreeMap::new(),
            rank_instance: BTreeMap::new(),
            phase2_unit_secs: None,
        }
    }

    /// Estimated time of phase 1 among `n_ready` workers plus phase 2
    /// for `n_late` late tensors, with phase 2 priced against one
    /// aggregate bandwidth (used when the late set is unknown).
    pub fn cost(&self, n_ready: usize, n_late: usize) -> SimDuration {
        let t = self.tensor.as_f64();
        let phase1 = self.phase1_volume(n_ready) / self.graph_bandwidth;
        let phase2 = n_late as f64 * t / self.graph_bandwidth;
        SimDuration::from_secs(phase1 + phase2)
    }

    /// Estimated buy cost for explicit ready/late sets: phase-1 network
    /// volume is counted over the *instances* actually exchanging data
    /// (intra-server traffic rides NVLink and is not the bottleneck),
    /// and phase-2 egress is bounded by the late workers' NICs, with a
    /// 0.5 discount reflecting that late tensors arriving before the
    /// collective drains join the ongoing aggregation (Sec. IV-C).
    pub fn cost_for(&self, ready: &[Rank], late: &[Rank]) -> SimDuration {
        let t = self.tensor.as_f64();
        // Count ready instances when placement is known.
        let n_units = if self.rank_instance.is_empty() {
            ready.len()
        } else {
            let mut insts: Vec<usize> = ready
                .iter()
                .filter_map(|r| self.rank_instance.get(&r.0).copied())
                .collect();
            insts.sort_unstable();
            insts.dedup();
            insts.len()
        };
        let phase1 = self.phase1_volume(n_units) / self.graph_bandwidth;
        if late.is_empty() {
            return SimDuration::from_secs(phase1);
        }
        if let Some(unit) = self.phase2_unit_secs {
            // Late tensors broadcast from *distinct instances* leave
            // through different NIC egress ports and run concurrently;
            // same-instance stragglers serialize on their shared NIC.
            let distinct = if self.rank_instance.is_empty() {
                1
            } else {
                let mut insts: Vec<usize> = late
                    .iter()
                    .filter_map(|r| self.rank_instance.get(&r.0).copied())
                    .collect();
                insts.sort_unstable();
                insts.dedup();
                insts.len().max(1)
            };
            let serial_rounds = late.len().div_ceil(distinct) as f64;
            return SimDuration::from_secs(phase1 + unit * serial_rounds);
        }
        let mut late_insts: Vec<usize> = late
            .iter()
            .filter_map(|r| self.rank_instance.get(&r.0).copied())
            .collect();
        late_insts.sort_unstable();
        late_insts.dedup();
        // Unknown placement (from_parts): fall back to the graph-wide
        // bandwidth, the paper's original estimate.
        let egress: f64 = if late_insts.is_empty() {
            self.graph_bandwidth
        } else {
            late_insts
                .iter()
                .map(|i| {
                    self.instance_egress
                        .get(i)
                        .copied()
                        .unwrap_or(self.graph_bandwidth)
                })
                .sum()
        };
        let bw = egress.min(self.graph_bandwidth).max(1.0);
        let phase2 = 0.5 * late.len() as f64 * t / bw;
        SimDuration::from_secs(phase1 + phase2)
    }

    fn phase1_volume(&self, n_ready: usize) -> f64 {
        let t = self.tensor.as_f64();
        match self.primitive {
            Primitive::AllReduce => 2.0 * (n_ready.saturating_sub(1)) as f64 * t,
            Primitive::AllToAll => n_ready as f64 * t,
            Primitive::Broadcast => t,
            Primitive::Reduce | Primitive::ReduceScatter | Primitive::AllGather => {
                (n_ready.saturating_sub(1)) as f64 * t
            }
        }
    }
}

/// Restricts a strategy to the active workers: flows sourced at
/// relays are dropped (they contribute no data) while relay GPUs keep
/// forwarding/aggregating on the routes of others — the graph itself
/// is untouched, mirroring the behaviour-tuple mechanism.
///
/// Flows *terminating* at a relay stay: for rooted primitives the root
/// is always active (enforced by the coordinator), and for broadcasts
/// phase-2 semantics keep relay sinks harmless.
pub fn restrict_to_active(strategy: &Strategy, active: &[Rank]) -> Strategy {
    use adapcc_topo::logical::LogicalNode;
    let mut out = strategy.clone();
    for sub in &mut out.subs {
        sub.flows.retain(|f| match f.src {
            LogicalNode::Gpu(r) => active.contains(&r),
            LogicalNode::Nic(_) => true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: usize) -> Vec<Rank> {
        (0..n).map(Rank).collect()
    }

    fn ready_at(times_ms: &[(usize, f64)]) -> BTreeMap<Rank, SimTime> {
        times_ms
            .iter()
            .map(|(r, ms)| (Rank(*r), SimTime::from_secs(ms * 1e-3)))
            .collect()
    }

    fn est(buy_ms: f64) -> BuyEstimate {
        // 1 MiB tensor, bandwidth tuned so cost(n, 1) == buy_ms for a
        // broadcast-ish profile. Use explicit parts for precision.
        let t = ByteSize::from_mib(1);
        // allreduce, 4 ready, 1 late: volume = (2*3 + 1) MiB.
        let vol = 7.0 * t.as_f64();
        BuyEstimate::from_parts(t, Primitive::AllReduce, vol / (buy_ms * 1e-3))
    }

    #[test]
    fn waits_when_stragglers_are_cheap() {
        let mut c = Coordinator::new(1);
        // Everyone within 2 ms; buy costs 50 ms.
        let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.5), (3, 2.0), (4, 2.0)]);
        let d = c.decide(&workers(5), Rank(0), &ready, &est(50.0));
        assert!(matches!(d, Decision::WaitAll { .. }));
    }

    #[test]
    fn proceeds_when_straggler_exceeds_buy_cost() {
        let mut c = Coordinator::new(1);
        // Rank 4 is 200 ms late; buy costs ~20 ms.
        let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.0), (3, 2.0), (4, 200.0)]);
        let d = c.decide(&workers(5), Rank(0), &ready, &est(20.0));
        match d {
            Decision::Partial {
                ready,
                relays,
                start,
            } => {
                assert_eq!(relays, vec![Rank(4)]);
                assert_eq!(ready.len(), 4);
                // Break-even: trigger no earlier than the buy cost and
                // well before the straggler.
                assert!(start.as_secs() >= 0.020 && start.as_secs() < 0.2, "{start}");
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn probation_ranks_are_not_assigned_relay_duty() {
        let mut c = Coordinator::new(1);
        // Same geometry as `proceeds_when_straggler_exceeds_buy_cost`,
        // but the straggler is on probation: it still gets phase-2
        // service (it is late, so its data must arrive), yet it is
        // never *assigned* as a relay.
        c.set_relay_ineligible(vec![Rank(4)]);
        assert_eq!(c.relay_ineligible(), [Rank(4)]);
        let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.0), (3, 2.0), (4, 200.0)]);
        let d = c.decide(&workers(5), Rank(0), &ready, &est(20.0));
        match d {
            Decision::Partial { ready, relays, .. } => {
                assert!(
                    relays.is_empty(),
                    "probation rank must not relay: {relays:?}"
                );
                assert_eq!(ready.len(), 4);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn break_even_is_two_competitive() {
        // Adversarial straggler arriving just after the trigger: total
        // cost (wait + buy) is at most ~2x the offline optimum.
        let mut c = Coordinator::new(1);
        let buy = est(20.0);
        let ready = ready_at(&[(0, 0.0), (1, 0.0), (2, 0.0), (3, 0.0), (4, 26.0)]);
        match c.decide(&workers(5), Rank(0), &ready, &buy) {
            Decision::Partial { start, .. } => {
                let waited = start.as_secs();
                let buy_cost = buy.cost(4, 1).as_secs();
                // Offline optimum here: wait for the straggler (26 ms)
                // or buy at t=0 (20 ms) -> 20 ms.
                let online_total = waited + buy_cost;
                assert!(
                    online_total <= 2.0 * buy_cost + 0.006,
                    "total {online_total}"
                );
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn never_buys_without_the_root() {
        let mut c = Coordinator::new(1);
        // Root (rank 0) is the straggler: must wait for it.
        let ready = ready_at(&[(0, 300.0), (1, 0.0), (2, 0.0), (3, 1.0)]);
        let d = c.decide(&workers(4), Rank(0), &ready, &est(5.0));
        match d {
            Decision::Partial { ready, .. } => assert!(ready.contains(&Rank(0))),
            Decision::WaitAll { .. } => {}
        }
    }

    #[test]
    fn disabled_relay_always_waits() {
        let mut c = Coordinator::new(1).with_config(RelayConfig {
            enabled: false,
            ..Default::default()
        });
        let ready = ready_at(&[(0, 0.0), (1, 500.0)]);
        let d = c.decide(&workers(2), Rank(0), &ready, &est(1.0));
        assert!(matches!(d, Decision::WaitAll { .. }));
    }

    #[test]
    fn fault_detection_flags_missing_and_very_late() {
        let mut c = Coordinator::new(1);
        let mut ready = ready_at(&[(0, 0.0), (1, 5.0), (2, 8.0)]);
        // Rank 3 reports absurdly late; rank 4 never reports.
        ready.insert(Rank(3), SimTime::from_secs(100.0));
        let phase1_end = SimTime::from_secs(0.050);
        let faults = c.detect_faults(&workers(5), &ready, phase1_end);
        assert_eq!(faults, vec![Rank(3), Rank(4)]);
    }

    #[test]
    fn fault_detection_spares_moderately_late() {
        let mut c = Coordinator::new(1);
        // Phase 1 ended 50 ms after the first arrival; horizon is
        // 50 + 5*50 = 300 ms. A worker at 200 ms survives.
        let mut ready = ready_at(&[(0, 0.0), (1, 5.0)]);
        ready.insert(Rank(2), SimTime::from_secs(0.200));
        let faults = c.detect_faults(&workers(3), &ready, SimTime::from_secs(0.050));
        assert!(faults.is_empty(), "{faults:?}");
    }

    #[test]
    fn executor_faults_merge_into_detection() {
        use crate::error::{FaultKind, FaultReport};
        let mut c = Coordinator::new(1);
        c.note_executor_fault(FaultReport {
            kind: FaultKind::TransferAborted,
            at: SimTime::from_millis(3.0),
            links: Vec::new(),
            suspects: vec![Rank(2), Rank(4)],
            hop: "gpu2->nic0 chunk 0".into(),
        });
        assert_eq!(c.pending_executor_faults().len(), 1);
        // Rank 4 is also readiness-late: the merged verdict dedups it.
        let mut ready = ready_at(&[(0, 0.0), (1, 5.0), (2, 8.0), (3, 9.0)]);
        ready.remove(&Rank(4));
        let faults = c.detect_faults(&workers(5), &ready, SimTime::from_secs(0.050));
        assert_eq!(faults, vec![Rank(2), Rank(4)]);
        // The queue drains: a second pass is clean.
        assert!(c.pending_executor_faults().is_empty());
        let again = c.detect_faults(
            &workers(4),
            &ready_at(&[(0, 0.0), (1, 0.0)]),
            SimTime::from_secs(0.050),
        );
        assert_eq!(again, vec![Rank(2), Rank(3)]);
    }

    #[test]
    fn stats_accumulate_relay_counts() {
        let mut c = Coordinator::new(1);
        let ready = ready_at(&[(0, 0.0), (1, 0.0), (2, 0.0), (3, 500.0)]);
        for _ in 0..10 {
            let _ = c.decide(&workers(4), Rank(0), &ready, &est(5.0));
        }
        assert_eq!(c.stats().iterations, 10);
        assert!((c.stats().relay_probability(Rank(3)) - 1.0).abs() < 1e-9);
        assert_eq!(c.stats().relay_probability(Rank(1)), 0.0);
        assert_eq!(c.stats().rpc_delays_ms.len(), 10);
    }

    #[test]
    fn rpc_latency_distribution_matches_paper() {
        let mut c = Coordinator::new(42);
        let ready = ready_at(&[(0, 0.0), (1, 1.0)]);
        for _ in 0..1000 {
            let _ = c.decide(&workers(2), Rank(0), &ready, &est(50.0));
        }
        let mut d = c.stats().rpc_delays_ms.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p90 = d[(d.len() as f64 * 0.9) as usize];
        assert!(p90 < 1.5, "p90 {p90} ms");
        assert!(d[0] > 0.0);
    }

    #[test]
    fn buy_cost_formulas_match_paper() {
        let t = ByteSize::from_mib(1);
        let b = 10e9;
        let ar = BuyEstimate::from_parts(t, Primitive::AllReduce, b);
        // 2(N-1) x tensor + late.
        let expect = (2.0 * 3.0 * t.as_f64() + t.as_f64()) / b;
        assert!((ar.cost(4, 1).as_secs() - expect).abs() < 1e-12);
        let a2a = BuyEstimate::from_parts(t, Primitive::AllToAll, b);
        assert!((a2a.cost(4, 0).as_secs() - 4.0 * t.as_f64() / b).abs() < 1e-12);
        let bc = BuyEstimate::from_parts(t, Primitive::Broadcast, b);
        assert!((bc.cost(4, 0).as_secs() - t.as_f64() / b).abs() < 1e-12);
    }
}
