//! GPU behaviour abstraction (paper Sec. IV-C, "3-GPU Behavior
//! Abstraction").
//!
//! On a fixed communication graph with an arbitrary set of ready
//! workers, each GPU's role is fully described by the four-tuple
//! `<isActive, hasRecv, hasKernel, hasSend>`. The communicator derives
//! the tuple from the shared graph and the coordinator's active list —
//! no graph reconstruction is needed to change who relays and who
//! aggregates.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::Rank;
use adapcc_synth::strategy::SubCollective;
use adapcc_topo::logical::{LogicalNode, LogicalTopology};

/// The paper's four-tuple describing a GPU's role on a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BehaviorTuple {
    /// The worker is ready and contributes its own tensor (not a relay).
    pub is_active: bool,
    /// The GPU must wait to receive data from at least one predecessor
    /// (set when any upstream node, recursively, has data to send).
    pub has_recv: bool,
    /// An aggregation kernel is launched to combine received and local
    /// chunks.
    pub has_kernel: bool,
    /// The GPU launches send events to its successor.
    pub has_send: bool,
}

impl BehaviorTuple {
    /// A completely idle role (not participating at all).
    pub const IDLE: BehaviorTuple = BehaviorTuple {
        is_active: false,
        has_recv: false,
        has_kernel: false,
        has_send: false,
    };
}

impl std::fmt::Display for BehaviorTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "<{}, {}, {}, {}>",
            u8::from(self.is_active),
            u8::from(self.has_recv),
            u8::from(self.has_kernel),
            u8::from(self.has_send)
        )
    }
}

/// Derives the behaviour tuple of every GPU on one sub-collective
/// graph, given the set of active (ready, data-contributing) ranks.
///
/// Rules (paper Sec. IV-C):
/// * `isActive` — the rank is in the active set.
/// * `hasRecv` — recursively, some predecessor on the graph is active
///   (has data to send toward this node).
/// * `hasKernel` — the sub-collective aggregates at this node, unless
///   (1) `hasRecv` is unset, (2) the node is an inactive relay with
///   only one active upstream branch (pure forwarding), or (3) the
///   synthesizer cleared the node's aggregation flag.
/// * `hasSend` — the node has a successor on some flow and either is
///   active or receives data to forward.
///
/// Nodes that are not GPUs (NICs) are skipped — their forwarding has no
/// software role to configure.
pub fn derive_behaviors(
    topo: &LogicalTopology,
    sub: &SubCollective,
    active: &[Rank],
) -> BTreeMap<Rank, BehaviorTuple> {
    let active_set: HashSet<Rank> = active.iter().copied().collect();
    // Build node-level adjacency from the flows.
    let mut preds: BTreeMap<LogicalNode, HashSet<LogicalNode>> = BTreeMap::new();
    let mut succs: BTreeMap<LogicalNode, HashSet<LogicalNode>> = BTreeMap::new();
    let mut nodes: Vec<LogicalNode> = Vec::new();
    let mut seen = HashSet::new();
    for f in &sub.flows {
        let path = f.nodes(topo);
        for n in &path {
            if seen.insert(*n) {
                nodes.push(*n);
            }
        }
        for w in path.windows(2) {
            preds.entry(w[1]).or_default().insert(w[0]);
            succs.entry(w[0]).or_default().insert(w[1]);
        }
    }
    // "Upstream has data": fixpoint — a node feeds data if it is an
    // active GPU or any predecessor feeds data.
    let mut feeds: BTreeMap<LogicalNode, bool> = nodes
        .iter()
        .map(|n| {
            let is_active_gpu = matches!(n, LogicalNode::Gpu(r) if active_set.contains(r));
            (*n, is_active_gpu)
        })
        .collect();
    loop {
        let mut changed = false;
        for n in &nodes {
            if feeds[n] {
                continue;
            }
            let any = preds
                .get(n)
                .is_some_and(|ps| ps.iter().any(|p| feeds.get(p).copied().unwrap_or(false)));
            if any {
                feeds.insert(*n, true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = BTreeMap::new();
    for n in &nodes {
        let LogicalNode::Gpu(rank) = n else { continue };
        let is_active = active_set.contains(rank);
        let active_preds = preds
            .get(n)
            .map(|ps| {
                ps.iter()
                    .filter(|p| feeds.get(*p).copied().unwrap_or(false))
                    .count()
            })
            .unwrap_or(0);
        let has_recv = active_preds > 0;
        let has_succ = succs.get(n).is_some_and(|s| !s.is_empty());
        let has_send = has_succ && (is_active || has_recv);
        let aggregation_requested = sub.aggregates_at(*n);
        // Written to mirror the paper's three exception clauses for
        // hasKernel verbatim, not minimized boolean algebra.
        #[allow(clippy::nonminimal_bool)]
        let has_kernel = aggregation_requested && has_recv && !(!is_active && active_preds == 1);
        out.insert(
            *rank,
            BehaviorTuple {
                is_active,
                has_recv,
                has_kernel,
                has_send,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_simnet::units::ByteSize;
    use adapcc_synth::strategy::Flow;
    use adapcc_topo::detect::Detector;

    /// Rebuild the paper's Fig. 7 example: a 4-GPU reduce chain
    /// 3 -> 1 -> 0 and 2 -> 1 -> 0, with GPU1 acting as a relay.
    fn fig7(topo: &LogicalTopology) -> SubCollective {
        let g = |r: usize| LogicalNode::Gpu(Rank(r));
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let flows = vec![
            Flow {
                src: g(2),
                dst: g(0),
                route: vec![e(g(2), g(1)), e(g(1), g(0))],
            },
            Flow {
                src: g(3),
                dst: g(0),
                route: vec![e(g(3), g(1)), e(g(1), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(1), true);
        aggregate.insert(g(0), true);
        SubCollective {
            fraction: 1.0,
            chunk: ByteSize::from_mib(1),
            root: Some(Rank(0)),
            flows,
            aggregate,
        }
    }

    fn setup() -> (Cluster, LogicalTopology) {
        let c = Cluster::homogeneous_a100(1);
        let t = Detector::new(&c, 1).run().logical_topology(&c);
        (c, t)
    }

    #[test]
    fn fig7_all_active() {
        let (_c, topo) = setup();
        let sub = fig7(&topo);
        let b = derive_behaviors(&topo, &sub, &[Rank(0), Rank(1), Rank(2), Rank(3)]);
        // GPU1 is active and aggregates two inflows.
        assert_eq!(
            b[&Rank(1)],
            BehaviorTuple {
                is_active: true,
                has_recv: true,
                has_kernel: true,
                has_send: true
            }
        );
        // Root receives, aggregates, does not send.
        assert_eq!(
            b[&Rank(0)],
            BehaviorTuple {
                is_active: true,
                has_recv: true,
                has_kernel: true,
                has_send: false
            }
        );
        // Leaves only send.
        assert_eq!(
            b[&Rank(3)],
            BehaviorTuple {
                is_active: true,
                has_recv: false,
                has_kernel: false,
                has_send: true
            }
        );
    }

    #[test]
    fn fig7_gpu1_as_relay() {
        let (_c, topo) = setup();
        let sub = fig7(&topo);
        // GPU1 not ready: it relays 2 and 3 but contributes nothing.
        let b = derive_behaviors(&topo, &sub, &[Rank(0), Rank(2), Rank(3)]);
        assert_eq!(
            b[&Rank(1)],
            BehaviorTuple {
                is_active: false,
                has_recv: true,
                has_kernel: true,
                has_send: true
            },
            "a relay with two active inflows still aggregates them"
        );
    }

    #[test]
    fn relay_with_single_active_inflow_forwards_without_kernel() {
        let (_c, topo) = setup();
        let sub = fig7(&topo);
        // Only GPU3 is ready upstream of the relay: pure forwarding
        // (paper: "GPU1 does not need to launch the aggregation kernel
        // but can directly relay traffic from GPU3 to GPU0").
        let b = derive_behaviors(&topo, &sub, &[Rank(0), Rank(3)]);
        assert_eq!(
            b[&Rank(1)],
            BehaviorTuple {
                is_active: false,
                has_recv: true,
                has_kernel: false,
                has_send: true
            }
        );
        // GPU2 is a silent leaf: nothing to send.
        assert_eq!(b[&Rank(2)], BehaviorTuple::IDLE);
    }

    #[test]
    fn no_active_upstream_means_no_send() {
        let (_c, topo) = setup();
        let sub = fig7(&topo);
        // Nothing upstream ready: the relay is fully idle.
        let b = derive_behaviors(&topo, &sub, &[Rank(0)]);
        assert_eq!(b[&Rank(1)], BehaviorTuple::IDLE);
        assert_eq!(
            b[&Rank(0)],
            BehaviorTuple {
                is_active: true,
                has_recv: false,
                has_kernel: false,
                has_send: false
            }
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = BehaviorTuple {
            is_active: true,
            has_recv: false,
            has_kernel: false,
            has_send: true,
        };
        assert_eq!(t.to_string(), "<1, 0, 0, 1>");
    }
}
