//! The top-level AdapCC session — the public API a training script
//! uses (paper Sec. VI-A mirrors it as `adapcc.init()` /
//! `adapcc.setup()` / `adapcc.allreduce()` / `adapcc.profile()`).
//!
//! [`AdapCC::init`] runs the detector and the profiler and caches
//! nothing else; strategies are synthesized lazily per (primitive,
//! tensor, root) and reused. [`AdapCC::setup`] builds the transmission
//! contexts. Collectives execute through the chunk-pipelined
//! [`Executor`]; the adaptive entry point
//! [`AdapCC::allreduce_adaptive`] consults the relay [`Coordinator`]
//! each iteration and runs the phase-1 / phase-2 protocol when the
//! ski-rental rule says to proceed without stragglers.
//! [`AdapCC::reprofile`] is the in-place graph reconstruction: profile
//! → re-solve → re-set-up, never restarting the job.

use std::collections::{BTreeMap, HashMap};

use std::fmt;

use adapcc_plancache::{
    fingerprint, CachedPlan, Fingerprint, FingerprintInputs, Lookup, PlanCache, PlanCacheConfig,
    PlanCacheStats,
};
use adapcc_profile::profiler::{LinkProfile, Profiler};
use adapcc_simnet::cluster::{Cluster, LinkId, Rank};
use adapcc_simnet::engine::NetSim;
use adapcc_simnet::faults::{nic_links, worker_links, FaultSchedule};
use adapcc_simnet::hardware::kernel_launch_overhead;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::strategy::Strategy;
use adapcc_topo::detect::{DetectionReport, Detector};
use adapcc_topo::logical::LogicalTopology;

use crate::communicator::{Communicator, SetupReport};
use crate::error::{AdapCCError, FaultReport};
use crate::executor::{BatchReport, ExecutionRequest, Executor, DEFAULT_DEADLINE_MULTIPLIER};
use crate::reconstruct::ReconstructReport;
use crate::relay::{
    restrict_to_active, BuyEstimate, Coordinator, Decision, RelayConfig, RelayStats,
};

/// Initialization options.
#[derive(Debug, Clone)]
pub struct InitOptions {
    /// Parallel sub-collectives per strategy (`M`, paper default 4).
    pub parallelism: usize,
    /// Seed for every stochastic component (probing noise, annealer,
    /// RPC jitter).
    pub seed: u64,
    /// Relay-control configuration.
    pub relay: RelayConfig,
    /// Relative bandwidth change that triggers re-synthesis on
    /// re-profiling.
    pub resynth_threshold: f64,
    /// Synthesizer effort.
    pub synth: SynthConfig,
    /// Plan-cache behavior: exact fingerprint hits skip the solver,
    /// near misses warm-start it. Enabled (memory-only) by default;
    /// see [`PlanCacheConfig::disabled`] for the cold baseline and
    /// [`PlanCacheConfig::on_disk`] for a persistent tier.
    pub plan_cache: PlanCacheConfig,
    /// Telemetry sink threaded through every pipeline phase (detect,
    /// profile, synthesize, execute, relay). Disabled by default; an
    /// enabled sink records phase spans on one stitched timeline plus
    /// per-link flow records from the executor.
    pub telemetry: adapcc_telemetry::Telemetry,
}

impl Default for InitOptions {
    fn default() -> Self {
        InitOptions {
            parallelism: 4,
            seed: 0,
            relay: RelayConfig::default(),
            resynth_threshold: 0.15,
            synth: SynthConfig::default(),
            plan_cache: PlanCacheConfig::default(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
        }
    }
}

/// What initialization cost (detection + profiling, charged before
/// training starts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitReport {
    /// Topology detection time (constant in job scale).
    pub detection: SimDuration,
    /// First profiling pass.
    pub profiling: SimDuration,
}

impl InitReport {
    /// Total initialization time.
    pub fn total(&self) -> SimDuration {
        self.detection + self.profiling
    }
}

/// Running totals of how synthesis requests were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct SynthTally {
    /// Cold solves (full candidate generation + anneal).
    cold: u64,
    /// Warm starts (cached seed + chunk sweep + polish anneal).
    warm: u64,
    /// Exact cache hits (solver skipped).
    hit: u64,
}

impl SynthTally {
    fn since(&self, before: SynthTally) -> SynthTally {
        SynthTally {
            cold: self.cold - before.cold,
            warm: self.warm - before.warm,
            hit: self.hit - before.hit,
        }
    }
}

/// How the session reacts to executor-level faults.
///
/// Transient faults (hop timeouts, incomplete runs) are retried with
/// bounded exponential backoff — a link flap heals while the session
/// backs off. Permanent faults (aborted transfers) and exhausted
/// retries trigger the exclusion path: suspects are health-checked,
/// confirmed-dead workers are excluded, and the communication graph is
/// reconstructed in place (never a job restart).
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Transient-fault retries before the session escalates to the
    /// health-check / exclusion path.
    pub max_retries: usize,
    /// First retry backoff; doubles per consecutive failed attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on a single backoff.
    pub backoff_cap: SimDuration,
    /// Per-hop deadline multiplier handed to the executor (see
    /// [`DEFAULT_DEADLINE_MULTIPLIER`]).
    pub deadline_multiplier: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 5,
            backoff_base: SimDuration::from_millis(25.0),
            backoff_cap: SimDuration::from_millis(400.0),
            deadline_multiplier: DEFAULT_DEADLINE_MULTIPLIER,
        }
    }
}

/// One entry of the session's recovery timeline (absolute session
/// clock).
#[derive(Debug, Clone)]
pub enum RecoveryEvent {
    /// The executor classified a fault.
    Detected {
        /// Detection instant.
        at: SimTime,
        /// The classified fault.
        report: FaultReport,
    },
    /// A transient fault is being retried after backoff.
    Retrying {
        /// Instant the retry starts (backoff included).
        at: SimTime,
        /// Consecutive attempt number (1 = first retry).
        attempt: usize,
        /// Backoff charged before this retry.
        backoff: SimDuration,
    },
    /// Confirmed-dead workers were excluded and the graph reconstructed
    /// over the survivors.
    Excluded {
        /// Instant reconstruction finished.
        at: SimTime,
        /// The workers removed from the job.
        ranks: Vec<Rank>,
        /// Cost of the in-place reconstruction.
        reconstruction: ReconstructReport,
    },
    /// A collective completed after one or more recovery actions.
    Recovered {
        /// Completion instant.
        at: SimTime,
        /// Transient retries used on the final attempt streak.
        attempts: usize,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::Detected { at, report } => {
                write!(f, "[{at}] detected: {report}")
            }
            RecoveryEvent::Retrying {
                at,
                attempt,
                backoff,
            } => {
                write!(f, "[{at}] retry #{attempt} after {backoff} backoff")
            }
            RecoveryEvent::Excluded {
                at,
                ranks,
                reconstruction,
            } => {
                write!(f, "[{at}] excluded ")?;
                for (i, r) in ranks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "; graph reconstructed in {}", reconstruction.total())
            }
            RecoveryEvent::Recovered { at, attempts } => {
                write!(
                    f,
                    "[{at}] recovered ({attempts} retry(ies) on final streak)"
                )
            }
        }
    }
}

/// Result of one collective iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// What the coordinator decided (always `WaitAll` for the
    /// non-adaptive entry points).
    pub decision: Decision,
    /// Completion instant on the iteration clock (time 0 = iteration
    /// start; worker ready times are offsets on that clock).
    pub finish: SimTime,
    /// `finish` minus the first worker's ready time: the paper's
    /// "communication time" including waiting.
    pub comm_time: SimDuration,
    /// How long the fastest worker waited before communication began.
    pub wait_time: SimDuration,
    /// Workers declared faulty this iteration (excluded from training;
    /// the caller re-shards its data loader).
    pub faults: Vec<Rank>,
    /// Output tensors (present when inputs were given).
    pub outputs: BTreeMap<Rank, Vec<f32>>,
}

/// The AdapCC session over one cluster.
///
/// # Examples
///
/// ```
/// use adapcc::AdapCC;
/// use adapcc::session::InitOptions;
/// use adapcc_simnet::cluster::Cluster;
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let mut cc = AdapCC::init(&cluster, InitOptions::default());
/// cc.setup();
/// let report = cc
///     .allreduce(ByteSize::from_mib(16), &Default::default(), None)
///     .expect("healthy fabric");
/// assert!(report.finish.as_secs() > 0.0);
/// ```
#[derive(Debug)]
pub struct AdapCC<'c> {
    cluster: &'c Cluster,
    options: InitOptions,
    detection: DetectionReport,
    topo: LogicalTopology,
    profile: LinkProfile,
    init_report: InitReport,
    communicator: Communicator,
    coordinator: Coordinator,
    strategies: HashMap<(Primitive, u64, Option<Rank>), Strategy>,
    /// Fingerprinted cross-reconstruction plan store. Unlike
    /// `strategies` (a per-worker-set memo cleared on every change),
    /// the cache is keyed by content and survives `set_workers`,
    /// reprofiles and exclusions — returning to a previously-seen
    /// state hits.
    plan_cache: PlanCache,
    /// How the solver was engaged since session start (cold solves,
    /// warm starts, exact hits); reconstruction paths diff it around
    /// their re-synthesis loops to charge the matching modeled cost.
    synth_tally: SynthTally,
    estimates: HashMap<(Primitive, u64), BuyEstimate>,
    /// Zero-skew execution time per cached strategy: timing-only
    /// wait-all collectives reuse it instead of re-simulating (the
    /// collective itself is deterministic; only readiness varies).
    exec_cache: HashMap<(Primitive, u64, Option<Rank>), f64>,
    workers: Vec<Rank>,
    iteration: u64,
    fabric_factors: Vec<(LinkId, f64)>,
    profile_period: Option<u64>,
    last_reconstruct: Option<ReconstructReport>,
    fault_schedule: Option<FaultSchedule>,
    session_clock: SimTime,
    recovery: RecoveryPolicy,
    recovery_log: Vec<RecoveryEvent>,
    pending_probe_losses: Vec<(LinkId, u32)>,
}

impl<'c> AdapCC<'c> {
    /// Detects the topology, profiles the links, and returns a ready
    /// session (the paper's `adapcc.init()`).
    pub fn init(cluster: &'c Cluster, options: InitOptions) -> Self {
        let mut detector =
            Detector::new(cluster, options.seed).with_telemetry(options.telemetry.clone());
        let detection = detector.run();
        let topo = detection.logical_topology(cluster);
        let prof = Profiler::new(cluster, &topo, options.seed)
            .with_telemetry(options.telemetry.at_offset(detection.elapsed.as_secs()))
            .run();
        let init_report = InitReport {
            detection: detection.elapsed,
            profiling: prof.elapsed,
        };
        let workers = (0..cluster.gpu_count()).map(Rank).collect();
        let plan_cache = PlanCache::new(options.plan_cache.clone());
        AdapCC {
            cluster,
            coordinator: Coordinator::new(options.seed)
                .with_config(options.relay.clone())
                .with_telemetry(options.telemetry.clone()),
            options,
            detection,
            topo,
            profile: prof.links,
            init_report,
            communicator: Communicator::new(),
            strategies: HashMap::new(),
            plan_cache,
            synth_tally: SynthTally::default(),
            estimates: HashMap::new(),
            exec_cache: HashMap::new(),
            workers,
            iteration: 0,
            fabric_factors: Vec::new(),
            profile_period: None,
            last_reconstruct: None,
            fault_schedule: None,
            session_clock: SimTime::ZERO,
            recovery: RecoveryPolicy::default(),
            recovery_log: Vec::new(),
            pending_probe_losses: Vec::new(),
        }
    }

    // ---- fault injection & recovery configuration ----

    /// Arms a fault schedule against the session: every subsequent
    /// collective executes with per-hop stall detection over a fabric
    /// that replays `schedule` (timed against the session clock), and
    /// faults that surface go through the recovery loop —
    /// retry-with-backoff for transients, health-check → exclusion →
    /// in-place graph reconstruction for permanent failures. Probe-loss
    /// events are queued for the next profiling pass. Resets the
    /// session clock and the recovery timeline.
    pub fn inject_faults(&mut self, schedule: FaultSchedule) {
        self.pending_probe_losses = schedule.probe_losses().collect();
        self.fault_schedule = Some(schedule);
        self.session_clock = SimTime::ZERO;
        self.recovery_log.clear();
        // Cached zero-skew times were measured on a healthy fabric.
        self.exec_cache.clear();
        self.estimates.clear();
    }

    /// Disarms fault injection; subsequent collectives run on a healthy
    /// fabric again.
    pub fn clear_faults(&mut self) {
        self.fault_schedule = None;
        self.pending_probe_losses.clear();
        self.exec_cache.clear();
        self.estimates.clear();
    }

    /// The armed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.fault_schedule.as_ref()
    }

    /// Absolute session clock: total simulated time consumed by
    /// collectives, backoffs, and reconstructions since the last
    /// [`AdapCC::inject_faults`]. Fault-schedule timestamps are
    /// interpreted against this clock.
    pub fn session_clock(&self) -> SimTime {
        self.session_clock
    }

    /// The recovery timeline (detections, retries, exclusions,
    /// recoveries) accumulated since the last [`AdapCC::inject_faults`].
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// Replaces the recovery policy.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        assert!(
            policy.deadline_multiplier.is_finite() && policy.deadline_multiplier > 1.0,
            "deadline multiplier must exceed 1"
        );
        self.recovery = policy;
    }

    /// Enables periodic on-the-fly re-profiling every `iterations`
    /// collective calls (the paper's `adapcc.profile()` API; Sec. VI-D
    /// uses 500). The pass runs transparently at the start of the
    /// triggering iteration; its cost is visible through
    /// [`AdapCC::last_reconstruct`].
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn set_profile_period(&mut self, iterations: u64) {
        assert!(iterations > 0, "profiling period must be positive");
        self.profile_period = Some(iterations);
    }

    /// Disables periodic re-profiling.
    pub fn clear_profile_period(&mut self) {
        self.profile_period = None;
    }

    /// The most recent automatic (or manual) reconstruction report.
    pub fn last_reconstruct(&self) -> Option<ReconstructReport> {
        self.last_reconstruct
    }

    /// Runs the periodic profiling pass if this iteration is due.
    fn maybe_reprofile(&mut self) {
        if let Some(period) = self.profile_period {
            if self.iteration > 0 && self.iteration.is_multiple_of(period) {
                let report = self.reprofile();
                self.last_reconstruct = Some(report);
            }
        }
    }

    /// Applies live capacity factors (the `tc`-shaped / trace-driven
    /// bandwidth of Sec. VI-D) to every subsequent collective and to
    /// re-profiling passes.
    pub fn set_fabric_factors(&mut self, factors: Vec<(LinkId, f64)>) {
        self.fabric_factors = factors;
        self.exec_cache.clear();
        self.estimates.clear();
    }

    /// Builds the transmission contexts (the paper's `adapcc.setup()`).
    pub fn setup(&mut self) -> SetupReport {
        self.communicator
            .setup(self.cluster, self.options.parallelism)
    }

    /// The initialization cost breakdown.
    pub fn init_report(&self) -> InitReport {
        self.init_report
    }

    /// The cluster the session runs over.
    pub fn cluster(&self) -> &'c Cluster {
        self.cluster
    }

    /// The live capacity factors applied to the fabric.
    pub fn fabric_factors(&self) -> &[(LinkId, f64)] {
        &self.fabric_factors
    }

    /// The detected topology report.
    pub fn detection(&self) -> &DetectionReport {
        &self.detection
    }

    /// The logical topology.
    pub fn topology(&self) -> &LogicalTopology {
        &self.topo
    }

    /// The current link profile.
    pub fn link_profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Relay statistics accumulated so far (Fig. 15 / Fig. 19(d)).
    pub fn relay_stats(&self) -> &RelayStats {
        self.coordinator.stats()
    }

    /// All worker ranks of the job.
    pub fn workers(&self) -> &[Rank] {
        &self.workers
    }

    /// Restricts the job to a subset of workers (after faults, or for
    /// partial-job collectives). Cached strategies are dropped.
    pub fn set_workers(&mut self, workers: Vec<Rank>) {
        assert!(!workers.is_empty(), "job needs at least one worker");
        self.workers = workers;
        self.strategies.clear();
        self.estimates.clear();
        self.exec_cache.clear();
    }

    /// The synthesized strategy for a primitive/tensor pair (cached).
    pub fn strategy_for(&mut self, primitive: Primitive, tensor: ByteSize) -> &Strategy {
        self.strategy_for_root(primitive, tensor, None)
    }

    fn strategy_for_root(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        root: Option<Rank>,
    ) -> &Strategy {
        let key = (primitive, tensor.as_u64(), root);
        if !self.strategies.contains_key(&key) {
            let strategy = self.synthesize_through_cache(primitive, tensor, root);
            self.strategies.insert(key, strategy);
        }
        &self.strategies[&key]
    }

    /// Satisfies one synthesis request through the plan cache: exact
    /// fingerprint hits return the stored strategy without touching the
    /// solver, near misses warm-start it from the stored seed, and
    /// misses (or seeds the solver rejects) solve cold and populate the
    /// cache.
    fn synthesize_through_cache(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        root: Option<Rank>,
    ) -> Strategy {
        let mut req = SynthRequest::new(
            primitive,
            tensor,
            self.options.parallelism,
            self.workers.clone(),
        );
        req.root = root;
        req.seed = self.options.seed;
        let fp = self.plan_fingerprint(&req);
        let full = crate::reconstruct::modeled_solve_cost(self.workers.len());
        let warm_cost = crate::reconstruct::modeled_warm_solve_cost(self.workers.len());
        let lookup = self.plan_cache.lookup(&fp);
        let strategy = match lookup {
            // Serve only plans that still validate against the topology
            // (a corrupted or hand-edited disk entry must not execute).
            Lookup::Hit(plan) if plan.strategy.validate(&self.topo).is_ok() => {
                self.synth_tally.hit += 1;
                self.plan_cache.note_saved(full);
                plan.strategy
            }
            Lookup::Warm(plan) => {
                let warm = Synthesizer::new(&self.topo, &self.profile)
                    .with_config(self.options.synth.clone())
                    .with_telemetry(self.options.telemetry.clone())
                    .synthesize_warm(&req, &plan.seed);
                match warm {
                    Some((strategy, seed)) => {
                        self.synth_tally.warm += 1;
                        self.plan_cache.note_saved(SimDuration::from_secs(
                            full.as_secs() - warm_cost.as_secs(),
                        ));
                        self.plan_cache.insert(
                            fp,
                            CachedPlan {
                                strategy: strategy.clone(),
                                seed,
                            },
                        );
                        strategy
                    }
                    None => {
                        self.plan_cache.warm_fell_back();
                        self.synthesize_cold(&req, fp)
                    }
                }
            }
            _ => self.synthesize_cold(&req, fp),
        };
        self.plan_cache.export_counters(&self.options.telemetry);
        strategy
    }

    fn synthesize_cold(&mut self, req: &SynthRequest, fp: Fingerprint) -> Strategy {
        self.synth_tally.cold += 1;
        let (strategy, seed) = Synthesizer::new(&self.topo, &self.profile)
            .with_config(self.options.synth.clone())
            .with_telemetry(self.options.telemetry.clone())
            .synthesize_with_seed(req);
        self.plan_cache.insert(
            fp,
            CachedPlan {
                strategy: strategy.clone(),
                seed,
            },
        );
        strategy
    }

    /// The canonical cache key of a synthesis request under the current
    /// topology, worker set and profile. Exclusions shrink
    /// `participants`, so they flip the shape half and structurally
    /// invalidate every pre-exclusion plan; profile drift past the
    /// `resynth_threshold` quantization flips only the profile half,
    /// leaving the entry warm-startable.
    fn plan_fingerprint(&self, req: &SynthRequest) -> Fingerprint {
        fingerprint(&FingerprintInputs {
            topo: &self.topo,
            profile: &self.profile,
            participants: &req.participants,
            relays: &req.relays,
            primitive: req.primitive,
            parallelism: req.parallelism,
            tensor: req.tensor,
            root: req.root,
            quantization: self.options.resynth_threshold,
        })
    }

    /// Plan-cache effectiveness counters (hits, misses, warm starts,
    /// modeled solver latency saved).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// An executor over the current fabric: live capacity factors
    /// always, fault schedule + stall deadlines when one is armed.
    fn executor(&self) -> Executor<'_> {
        let mut exec = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .with_telemetry(
                self.options
                    .telemetry
                    .at_offset(self.init_report.total().as_secs()),
            );
        if let Some(schedule) = &self.fault_schedule {
            exec = exec
                .with_fault_schedule(schedule.clone(), self.session_clock)
                .with_deadline_multiplier(self.recovery.deadline_multiplier);
        }
        exec
    }

    /// Executes a raw request batch on the session's fabric (capacity
    /// factors and any armed fault schedule included), without the
    /// recovery loop. Chaos harnesses and tests use it to observe raw
    /// classified faults.
    pub fn run_batch(&self, requests: &[ExecutionRequest<'_>]) -> Result<BatchReport, AdapCCError> {
        self.executor().try_execute(requests)
    }

    // ---- the recovery loop ----

    /// Runs `attempt` to completion under the recovery policy.
    ///
    /// Transient faults retry with bounded exponential backoff.
    /// Permanent faults — and transients that exhaust their retries —
    /// escalate: suspects are health-checked against the armed
    /// schedule, confirmed-dead workers are excluded and the graph is
    /// reconstructed in place over the survivors, then the attempt
    /// streak restarts. Every action advances the session clock by the
    /// simulated time it consumed.
    fn with_recovery<F>(&mut self, mut attempt: F) -> Result<IterationReport, AdapCCError>
    where
        F: FnMut(&mut Self) -> Result<IterationReport, AdapCCError>,
    {
        let mut attempts = 0usize;
        let mut excluded: Vec<Rank> = Vec::new();
        loop {
            match attempt(self) {
                Ok(mut report) => {
                    self.session_clock += SimDuration::from_secs(report.finish.as_secs());
                    if attempts > 0 || !excluded.is_empty() {
                        self.recovery_log.push(RecoveryEvent::Recovered {
                            at: self.session_clock,
                            attempts,
                        });
                    }
                    for r in &excluded {
                        if !report.faults.contains(r) {
                            report.faults.push(*r);
                        }
                    }
                    report.faults.sort_unstable();
                    return Ok(report);
                }
                Err(AdapCCError::Fault(fault)) => {
                    self.session_clock += SimDuration::from_secs(fault.at.as_secs());
                    self.recovery_log.push(RecoveryEvent::Detected {
                        at: self.session_clock,
                        report: fault.clone(),
                    });
                    if fault.is_permanent() || attempts >= self.recovery.max_retries {
                        let dead = self.confirm_dead(&fault);
                        if dead.is_empty() {
                            // Nothing provably dead to exclude: either a
                            // permanent abort whose owner already left the
                            // job, or a transient that outlived our
                            // patience. Surface the classification.
                            return Err(if fault.is_permanent() {
                                AdapCCError::Fault(fault)
                            } else {
                                AdapCCError::RetriesExhausted {
                                    attempts,
                                    last: fault,
                                }
                            });
                        }
                        let survivors = self.workers.iter().filter(|r| !dead.contains(r)).count();
                        if survivors < 2 {
                            return Err(AdapCCError::InsufficientSurvivors { survivors });
                        }
                        // Cached strategy keys describe what the job was
                        // running; they are re-synthesized over the
                        // survivors below (set_workers clears the cache).
                        let keys: Vec<(Primitive, u64, Option<Rank>)> =
                            self.strategies.keys().copied().collect();
                        self.exclude_workers(&dead);
                        // Share the exclusion with the relay coordinator's
                        // fault path (suspects narrowed to confirmed dead).
                        self.coordinator.note_executor_fault(FaultReport {
                            suspects: dead.clone(),
                            ..fault.clone()
                        });
                        let rec = self.reconstruct_after_exclusion(&dead, keys);
                        self.session_clock += rec.total();
                        self.recovery_log.push(RecoveryEvent::Excluded {
                            at: self.session_clock,
                            ranks: dead.clone(),
                            reconstruction: rec,
                        });
                        excluded.extend(dead);
                        attempts = 0;
                    } else {
                        attempts += 1;
                        let backoff = self
                            .recovery
                            .backoff_base
                            .scale(2f64.powi(attempts as i32 - 1))
                            .min(self.recovery.backoff_cap);
                        self.session_clock += backoff;
                        self.recovery_log.push(RecoveryEvent::Retrying {
                            at: self.session_clock,
                            attempt: attempts,
                            backoff,
                        });
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Health-checks a fault's suspects: a rank is confirmed dead when
    /// its local links have permanently failed (worker crash), or —
    /// for jobs spanning instances — when its instance's NIC links
    /// have (NIC failure cuts the whole instance off the fabric). The
    /// check replays the armed schedule up to the current session
    /// clock, i.e. it asks the hardware, not the timeline. Only ranks
    /// still in the job are returned.
    fn confirm_dead(&self, fault: &FaultReport) -> Vec<Rank> {
        let Some(schedule) = &self.fault_schedule else {
            return Vec::new();
        };
        let mut sim = NetSim::new(self.cluster);
        schedule.arm(&mut sim, self.session_clock);
        let multi_instance = {
            let mut insts: Vec<usize> = self
                .workers
                .iter()
                .map(|r| self.cluster.locate(*r).0 .0)
                .collect();
            insts.sort_unstable();
            insts.dedup();
            insts.len() > 1
        };
        let mut dead = Vec::new();
        for r in &fault.suspects {
            if !self.workers.contains(r) {
                continue;
            }
            // A crash fails *every* link adjacent to the worker's GPU.
            // Requiring all of them dead distinguishes the crashed rank
            // from a healthy neighbour that merely shares one NVLink
            // with it.
            let gpu_links = worker_links(self.cluster, *r);
            let gpu_dead =
                !gpu_links.is_empty() && gpu_links.iter().all(|l| sim.link_is_failed(*l));
            let (inst, _) = self.cluster.locate(*r);
            let nic_dead = multi_instance
                && nic_links(self.cluster, inst)
                    .iter()
                    .any(|l| sim.link_is_failed(*l));
            if gpu_dead || nic_dead {
                dead.push(*r);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    // ---- plain (wait-all) primitives ----

    /// AllReduce without relay control: waits for every worker.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed; see [`AdapCC::inject_faults`].
    pub fn allreduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.run_plain(Primitive::AllReduce, tensor, ready, inputs.clone()))
    }

    /// Reduce onto an automatically chosen root.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn reduce(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.run_plain(Primitive::Reduce, tensor, ready, inputs.clone()))
    }

    /// Broadcast from `root`.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery,
    /// the request is malformed, or recovery excluded `root` itself.
    pub fn broadcast(
        &mut self,
        root: Rank,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| {
            cc.run_rooted(
                Primitive::Broadcast,
                tensor,
                Some(root),
                ready,
                inputs.clone(),
            )
        })
    }

    /// AlltoAll personalized exchange.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn alltoall(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.run_plain(Primitive::AllToAll, tensor, ready, inputs.clone()))
    }

    /// AllGather, composed of one Broadcast per worker (paper
    /// Sec. IV-D). Each worker contributes `tensor` bytes; outputs are
    /// the rank-ordered concatenation (`N x tensor` per worker).
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn allgather(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.allgather_attempt(tensor, ready, inputs.clone()))
    }

    fn allgather_attempt(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.iteration += 1;
        let workers = self.workers.clone();
        let strategies: Vec<Strategy> = workers
            .iter()
            .map(|r| {
                self.strategy_for_root(Primitive::Broadcast, tensor, Some(*r))
                    .clone()
            })
            .collect();
        let requests: Vec<ExecutionRequest<'_>> = strategies
            .iter()
            .map(|s| {
                let mut req = ExecutionRequest::timing(s, tensor).with_ready(ready.clone());
                if let Some(inp) = &inputs {
                    req = req.with_inputs(inp.clone());
                }
                req
            })
            .collect();
        let batch = self.executor().try_execute(&requests)?;
        // Concatenate: slot j of every worker's output is root j's tensor.
        let elems = (tensor.as_u64() / 4) as usize;
        let mut outputs: BTreeMap<Rank, Vec<f32>> = BTreeMap::new();
        if let Some(inp) = &inputs {
            for w in &workers {
                let mut buf = vec![0.0f32; elems * workers.len()];
                for (j, root) in workers.iter().enumerate() {
                    let src = if w == root {
                        &inp[root]
                    } else {
                        &batch.requests[j].outputs[w]
                    };
                    buf[j * elems..(j + 1) * elems].copy_from_slice(src);
                }
                outputs.insert(*w, buf);
            }
        }
        let (first, last) = ready_span(ready, &workers);
        Ok(IterationReport {
            decision: Decision::WaitAll { start: last },
            finish: batch.finish,
            comm_time: batch.finish.duration_since(first),
            wait_time: last.duration_since(first),
            faults: Vec::new(),
            outputs,
        })
    }

    /// ReduceScatter, composed of one Reduce per worker over its shard
    /// (paper Sec. IV-D). `tensor` is the full per-worker tensor; each
    /// worker ends with its aggregated `tensor / N` shard.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError::InvalidRequest`] if the tensor does not
    /// split evenly into f32 shards over the current worker count
    /// (which may have shrunk through fault exclusion), and
    /// [`AdapCCError`] when an injected fault defeats recovery.
    pub fn reduce_scatter(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.reduce_scatter_attempt(tensor, ready, inputs.clone()))
    }

    fn reduce_scatter_attempt(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.iteration += 1;
        let workers = self.workers.clone();
        let n = workers.len();
        if !tensor.as_u64().is_multiple_of(4 * n as u64) {
            return Err(AdapCCError::InvalidRequest(format!(
                "tensor of {} bytes must split into f32 shards over {n} worker(s)",
                tensor.as_u64()
            )));
        }
        let shard = ByteSize::from_bytes(tensor.as_u64() / n as u64);
        let shard_elems = (shard.as_u64() / 4) as usize;
        let strategies: Vec<Strategy> = workers
            .iter()
            .map(|r| {
                self.strategy_for_root(Primitive::Reduce, shard, Some(*r))
                    .clone()
            })
            .collect();
        // Shard j of every input feeds the reduce rooted at worker j.
        let shard_inputs: Vec<Option<BTreeMap<Rank, Vec<f32>>>> = (0..n)
            .map(|j| {
                inputs.as_ref().map(|inp| {
                    inp.iter()
                        .map(|(r, buf)| (*r, buf[j * shard_elems..(j + 1) * shard_elems].to_vec()))
                        .collect()
                })
            })
            .collect();
        let requests: Vec<ExecutionRequest<'_>> = strategies
            .iter()
            .zip(&shard_inputs)
            .map(|(s, inp)| {
                let mut req = ExecutionRequest::timing(s, shard).with_ready(ready.clone());
                if let Some(inp) = inp {
                    req = req.with_inputs(inp.clone());
                }
                req
            })
            .collect();
        let batch = self.executor().try_execute(&requests)?;
        let mut outputs = BTreeMap::new();
        if inputs.is_some() {
            for (j, root) in workers.iter().enumerate() {
                if let Some(buf) = batch.requests[j].outputs.get(root) {
                    outputs.insert(*root, buf.clone());
                }
            }
        }
        let (first, last) = ready_span(ready, &workers);
        Ok(IterationReport {
            decision: Decision::WaitAll { start: last },
            finish: batch.finish,
            comm_time: batch.finish.duration_since(first),
            wait_time: last.duration_since(first),
            faults: Vec::new(),
            outputs,
        })
    }

    fn run_plain(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.run_rooted(primitive, tensor, None, ready, inputs)
    }

    fn run_rooted(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        root: Option<Rank>,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        if let Some(r) = root {
            if !self.workers.contains(&r) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "root {r} is not part of the job (excluded or never admitted)"
                )));
            }
        }
        self.iteration += 1;
        self.maybe_reprofile();
        // The request rides the communicator's work queue exactly as
        // the ML framework would push it (paper Fig. 4); the result is
        // fetched from the result queue below.
        let work_id = self.communicator.submit(crate::communicator::WorkItem {
            id: 0,
            primitive,
            tensor,
            ready: ready.clone(),
            inputs: inputs.clone(),
        });
        let item = self
            .communicator
            .take_work()
            .expect("the request just submitted");
        debug_assert_eq!(item.id, work_id);
        let workers = self.workers.clone();
        let strategy = self.strategy_for_root(primitive, tensor, root).clone();
        let (first, last) = ready_span(ready, &workers);
        // Timing-only wait-all runs reuse the cached zero-skew
        // execution time: the collective itself is deterministic, the
        // slowest worker gates its start. With a fault schedule armed
        // the cache would mask faults, so every run goes through the
        // executor for real.
        let (finish, outputs) = if item.inputs.is_none() && self.fault_schedule.is_none() {
            let t_exec = self.cached_exec_secs(primitive, tensor, root, &strategy);
            (last + SimDuration::from_secs(t_exec), BTreeMap::new())
        } else {
            let mut req = ExecutionRequest::timing(&strategy, tensor).with_ready(item.ready);
            if let Some(inp) = item.inputs {
                req = req.with_inputs(inp);
            }
            let batch = self.executor().try_execute(&[req])?;
            (
                batch.finish,
                batch
                    .requests
                    .into_iter()
                    .next()
                    .expect("one request")
                    .outputs,
            )
        };
        self.communicator.complete(crate::communicator::WorkResult {
            id: work_id,
            finish,
            outputs,
        });
        let result = self
            .communicator
            .fetch()
            .expect("the result just completed");
        debug_assert_eq!(result.id, work_id);
        Ok(IterationReport {
            decision: Decision::WaitAll { start: last },
            finish: result.finish,
            comm_time: result.finish.duration_since(first),
            wait_time: last.duration_since(first),
            faults: Vec::new(),
            outputs: result.outputs,
        })
    }

    /// Zero-skew execution time of a cached strategy (measured once).
    fn cached_exec_secs(
        &mut self,
        primitive: Primitive,
        tensor: ByteSize,
        root: Option<Rank>,
        strategy: &Strategy,
    ) -> f64 {
        let key = (primitive, tensor.as_u64(), root);
        if let Some(t) = self.exec_cache.get(&key) {
            return *t;
        }
        let t = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .execute(&[ExecutionRequest::timing(strategy, tensor)])
            .finish
            .as_secs();
        self.exec_cache.insert(key, t);
        t
    }

    // ---- adaptive AllReduce (relay control) ----

    /// The ski-rental buy estimate for one strategy, with a *measured*
    /// phase-2 unit: one full-tensor broadcast is executed once on the
    /// current fabric and its wall time cached (estimation by
    /// measurement, like everything else in AdapCC).
    fn buy_estimate(&mut self, strategy: &Strategy, tensor: ByteSize) -> BuyEstimate {
        let key = (strategy.primitive, tensor.as_u64());
        if let Some(est) = self.estimates.get(&key) {
            return est.clone();
        }
        let probe_root = self.workers[self.workers.len() / 2];
        let bstrat = self
            .strategy_for_root(Primitive::Broadcast, tensor, Some(probe_root))
            .clone();
        let unit = Executor::new(self.cluster, &self.topo)
            .with_capacity_factors(&self.fabric_factors)
            .execute(&[ExecutionRequest::timing(&bstrat, tensor)])
            .finish
            .as_secs();
        let est =
            BuyEstimate::new(&self.topo, &self.profile, strategy, tensor).with_phase2_unit(unit);
        self.estimates.insert(key, est.clone());
        est
    }

    /// AllReduce with adaptive relay control: the coordinator decides
    /// (ski-rental) whether to wait for stragglers or run a phase-1
    /// partial collective with relays followed by a phase-2 completion
    /// broadcast. Workers missing from `ready` are fault candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AdapCCError`] when an injected fault defeats recovery
    /// or the request is malformed.
    pub fn allreduce_adaptive(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.with_recovery(|cc| cc.allreduce_adaptive_attempt(tensor, ready, inputs.clone()))
    }

    fn allreduce_adaptive_attempt(
        &mut self,
        tensor: ByteSize,
        ready: &BTreeMap<Rank, SimTime>,
        inputs: Option<BTreeMap<Rank, Vec<f32>>>,
    ) -> Result<IterationReport, AdapCCError> {
        self.iteration += 1;
        self.maybe_reprofile();
        let workers = self.workers.clone();
        let strategy = self.strategy_for(Primitive::AllReduce, tensor).clone();
        let root = strategy.subs[0]
            .root
            .expect("allreduce strategies are rooted");
        let est = self.buy_estimate(&strategy, tensor);
        let decision = self.coordinator.decide(&workers, root, ready, &est);
        let first = ready.values().copied().min().unwrap_or(SimTime::ZERO);

        match decision.clone() {
            Decision::WaitAll { start } => {
                if inputs.is_none() && self.fault_schedule.is_none() {
                    let t_exec =
                        self.cached_exec_secs(Primitive::AllReduce, tensor, None, &strategy);
                    let (_, last) = ready_span(ready, &workers);
                    let finish = last.max(start) + SimDuration::from_secs(t_exec);
                    return Ok(IterationReport {
                        decision,
                        finish,
                        comm_time: finish.duration_since(first),
                        wait_time: start.duration_since(first.min(start)),
                        faults: Vec::new(),
                        outputs: BTreeMap::new(),
                    });
                }
                let mut req = ExecutionRequest::timing(&strategy, tensor).with_ready(ready.clone());
                if let Some(inp) = inputs {
                    req = req.with_inputs(inp);
                }
                let batch = self.executor().try_execute(&[req])?;
                Ok(IterationReport {
                    decision,
                    finish: batch.finish,
                    comm_time: batch.finish.duration_since(first),
                    wait_time: start.duration_since(first.min(start)),
                    faults: Vec::new(),
                    outputs: batch.requests.into_iter().next().expect("one").outputs,
                })
            }
            Decision::Partial {
                start,
                ready: active,
                relays,
            } => {
                // Phase 1: same graph, relay sources muted; sends begin
                // at the trigger instant.
                let phase1_strategy = restrict_to_active(&strategy, &active);
                let mut phase1_ready: BTreeMap<Rank, SimTime> = BTreeMap::new();
                for r in &active {
                    let t = ready.get(r).copied().unwrap_or(SimTime::ZERO);
                    phase1_ready.insert(*r, t.max(start));
                }
                let mut req =
                    ExecutionRequest::timing(&phase1_strategy, tensor).with_ready(phase1_ready);
                if let Some(inp) = &inputs {
                    let active_inputs: BTreeMap<Rank, Vec<f32>> = inp
                        .iter()
                        .filter(|(r, _)| active.contains(r))
                        .map(|(r, b)| (*r, b.clone()))
                        .collect();
                    req = req.with_inputs(active_inputs);
                }
                let phase1 = self.executor().try_execute(&[req])?;
                let phase1_end = phase1.finish;

                // Fault detection: relays still unready T_fault after
                // phase 1 are excluded.
                let faults = self.coordinator.detect_faults(&workers, ready, phase1_end);
                let late: Vec<Rank> = relays
                    .iter()
                    .copied()
                    .filter(|r| !faults.contains(r))
                    .collect();

                // Phase 2: late tensors are broadcast and locally
                // combined with the phase-1 result. A late worker whose
                // tensor became ready *during* phase 1 joined the
                // ongoing aggregation for the chunks still in flight
                // (paper Sec. IV-C), so only its missed fraction rides
                // the phase-2 broadcast.
                let mut finish = phase1_end;
                if !late.is_empty() {
                    let phase1_span = phase1_end.duration_since(start).as_secs().max(1e-9);
                    let bstrats: Vec<(Strategy, Rank, ByteSize)> = late
                        .iter()
                        .map(|r| {
                            let t = ready.get(r).copied().unwrap_or(phase1_end);
                            let missed = if t >= phase1_end {
                                1.0
                            } else {
                                // Fraction of chunks already aggregated
                                // when this worker's buffer filled.
                                (t.duration_since(start.min(t)).as_secs() / phase1_span)
                                    .clamp(0.0, 1.0)
                            };
                            let bytes = ((tensor.as_f64() * missed) as u64 / 4).max(1) * 4;
                            (
                                self.strategy_for_root(Primitive::Broadcast, tensor, Some(*r))
                                    .clone(),
                                *r,
                                ByteSize::from_bytes(bytes),
                            )
                        })
                        .collect();
                    let requests: Vec<ExecutionRequest<'_>> = bstrats
                        .iter()
                        .map(|(s, r, bytes)| {
                            let mut m = BTreeMap::new();
                            let t = ready.get(r).copied().unwrap_or(phase1_end);
                            m.insert(*r, t.max(phase1_end));
                            ExecutionRequest::timing(s, *bytes).with_ready(m)
                        })
                        .collect();
                    let phase2 = self.executor().try_execute(&requests)?;
                    // Local combine kernels, one per late tensor.
                    let (inst, _) = self.cluster.locate(root);
                    let combine = kernel_launch_overhead()
                        + self
                            .cluster
                            .spec(inst)
                            .gpu
                            .reduce_bandwidth()
                            .time_for(tensor);
                    finish = phase2.finish + combine.scale(late.len() as f64);
                }

                // Final values: phase-1 partial sum + late tensors.
                let mut outputs = BTreeMap::new();
                if let Some(inp) = &inputs {
                    let elems = (tensor.as_u64() / 4) as usize;
                    let base = phase1
                        .requests
                        .first()
                        .and_then(|r| r.outputs.values().next().cloned())
                        .unwrap_or_else(|| vec![0.0; elems]);
                    let mut total = base;
                    for r in &late {
                        for (d, v) in total.iter_mut().zip(&inp[r]) {
                            *d += v;
                        }
                    }
                    for w in workers.iter().filter(|w| !faults.contains(w)) {
                        outputs.insert(*w, total.clone());
                    }
                }

                Ok(IterationReport {
                    decision,
                    finish,
                    comm_time: finish.duration_since(first),
                    wait_time: start.duration_since(first.min(start)),
                    faults,
                    outputs,
                })
            }
        }
    }

    // ---- graph reconstruction ----

    /// Modeled solver latency for the re-synthesis work done since
    /// `before`: full cost if anything solved cold, the warm-start
    /// fraction if the cache seeded every solve, zero if every request
    /// was an exact hit (or nothing was synthesized).
    fn modeled_solving_since(&self, before: SynthTally) -> SimDuration {
        let t = self.synth_tally.since(before);
        if t.cold > 0 {
            crate::reconstruct::modeled_solve_cost(self.workers.len())
        } else if t.warm > 0 {
            crate::reconstruct::modeled_warm_solve_cost(self.workers.len())
        } else {
            SimDuration::ZERO
        }
    }

    /// Re-profiles the links under the given live capacity factors and,
    /// if the picture changed beyond the threshold, re-synthesizes all
    /// cached strategies and re-runs the context set-up — all without
    /// stopping the job (paper Sec. IV-B / Fig. 19(c)).
    pub fn reprofile(&mut self) -> ReconstructReport {
        let mut profiler =
            Profiler::new(self.cluster, &self.topo, self.options.seed ^ self.iteration);
        for (l, f) in &self.fabric_factors {
            profiler.set_capacity_factor(*l, *f);
        }
        // Scheduled probe losses hit the next profiling pass (the
        // profiler's retransmission path absorbs them).
        for (l, c) in self.pending_probe_losses.drain(..) {
            profiler.inject_probe_loss(l, c);
        }
        let report = profiler.run();
        let delta = report.links.max_bandwidth_delta(&self.profile);
        let changed = delta > self.options.resynth_threshold;
        self.profile = report.links;
        let mut solving = SimDuration::ZERO;
        let mut setup = SimDuration::ZERO;
        if changed {
            let keys: Vec<(Primitive, u64, Option<Rank>)> =
                self.strategies.keys().copied().collect();
            self.strategies.clear();
            self.estimates.clear();
            self.exec_cache.clear();
            // Charge the modeled solver latency (like
            // `reconstruct_after_exclusion`) rather than local wall
            // time, so same-seed runs report identical reconstruction
            // costs. The plan cache scales it: any cold solve bills the
            // full anneal, pure warm starts bill the polish fraction,
            // pure exact hits are free.
            let before = self.synth_tally;
            for (p, bytes, root) in keys {
                let _ = self.strategy_for_root(p, ByteSize::from_bytes(bytes), root);
            }
            solving = self.modeled_solving_since(before);
            setup = self
                .communicator
                .setup(self.cluster, self.options.parallelism)
                .elapsed;
        }
        let out = ReconstructReport {
            profiling: report.elapsed,
            solving,
            setup,
            changed,
        };
        self.last_reconstruct = Some(out);
        out
    }

    /// In-place reconstruction after a permanent exclusion: re-profile
    /// the surviving fabric, re-synthesize every strategy the job was
    /// running (rooted collectives whose root died are dropped), and
    /// re-run the transmission-context set-up. Unlike [`Self::reprofile`]
    /// this always re-synthesizes — the worker set changed, so every
    /// cached strategy is stale regardless of bandwidth deltas — and it
    /// charges the modeled solver latency rather than local wall time,
    /// keeping the simulated session clock deterministic.
    fn reconstruct_after_exclusion(
        &mut self,
        dead: &[Rank],
        keys: Vec<(Primitive, u64, Option<Rank>)>,
    ) -> ReconstructReport {
        let mut profiler =
            Profiler::new(self.cluster, &self.topo, self.options.seed ^ self.iteration);
        for (l, f) in &self.fabric_factors {
            profiler.set_capacity_factor(*l, *f);
        }
        for (l, c) in self.pending_probe_losses.drain(..) {
            profiler.inject_probe_loss(l, c);
        }
        let report = profiler.run();
        self.profile = report.links;
        let before = self.synth_tally;
        let mut resynthesized = false;
        for (p, bytes, root) in keys {
            if root.is_some_and(|r| dead.contains(&r)) {
                continue;
            }
            resynthesized = true;
            let _ = self.strategy_for_root(p, ByteSize::from_bytes(bytes), root);
        }
        // Exclusion shrinks the participant set, so every fingerprint's
        // shape half changes and the loop above solves cold — unless
        // the fleet has returned to a previously-seen worker set, where
        // the cache legitimately discounts the bill. With no surviving
        // keys the session still re-plans its graph at full cost.
        let solving = if resynthesized {
            self.modeled_solving_since(before)
        } else {
            crate::reconstruct::modeled_solve_cost(self.workers.len())
        };
        let setup = self
            .communicator
            .setup(self.cluster, self.options.parallelism)
            .elapsed;
        let out = ReconstructReport {
            profiling: report.elapsed,
            solving,
            setup,
            changed: true,
        };
        self.last_reconstruct = Some(out);
        out
    }

    /// Elastic scale-out (paper Sec. IV-A: detectors re-trigger "when
    /// a new worker joins the job"): admits new ranks into the job,
    /// re-runs detection for instances that were not previously part
    /// of it, re-profiles, and re-synthesizes — all without stopping
    /// training. Returns the cost breakdown.
    ///
    /// # Panics
    ///
    /// Panics if a rank is already in the job or outside the cluster.
    pub fn add_workers(&mut self, new: &[Rank]) -> ScaleReport {
        use std::collections::BTreeSet;
        let existing_instances: BTreeSet<usize> = self
            .workers
            .iter()
            .map(|r| self.cluster.locate(*r).0 .0)
            .collect();
        for r in new {
            assert!(!self.workers.contains(r), "{r} is already part of the job");
            assert!(r.0 < self.cluster.gpu_count(), "{r} outside the cluster");
        }
        // Detection re-runs only for instances joining the job; it is
        // concurrent per instance, so the cost is one instance's probe
        // schedule (or zero when only known instances grew).
        let joins_new_instance = new
            .iter()
            .any(|r| !existing_instances.contains(&self.cluster.locate(*r).0 .0));
        let detection = if joins_new_instance {
            let mut detector = Detector::new(self.cluster, self.options.seed ^ 0xE1A5);
            let report = detector.run();
            self.detection = report.clone();
            self.topo = report.logical_topology(self.cluster);
            report.elapsed
        } else {
            SimDuration::ZERO
        };
        let mut workers = self.workers.clone();
        workers.extend(new.iter().copied());
        workers.sort();
        self.set_workers(workers);
        let reconstruction = self.reprofile();
        ScaleReport {
            detection,
            reconstruction,
        }
    }

    /// Removes faulty workers from the job and re-synthesizes over the
    /// survivors (the fault-recovery path; the data loader re-shards
    /// on the training side).
    pub fn exclude_workers(&mut self, faulty: &[Rank]) {
        let remaining: Vec<Rank> = self
            .workers
            .iter()
            .copied()
            .filter(|r| !faulty.contains(r))
            .collect();
        self.set_workers(remaining);
    }
}

/// Cost breakdown of one elastic scale-out event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleReport {
    /// Topology re-detection for newly joined instances (zero when only
    /// already-known instances grew).
    pub detection: SimDuration,
    /// The in-place profiling/re-synthesis that follows.
    pub reconstruction: ReconstructReport,
}

impl ScaleReport {
    /// Total time the job was blocked by the scale event.
    pub fn total(&self) -> SimDuration {
        self.detection + self.reconstruction.total()
    }
}

fn ready_span(ready: &BTreeMap<Rank, SimTime>, workers: &[Rank]) -> (SimTime, SimTime) {
    let mut first = SimTime::ZERO;
    let mut last = SimTime::ZERO;
    let mut any = false;
    for w in workers {
        let t = ready.get(w).copied().unwrap_or(SimTime::ZERO);
        if !any {
            first = t;
            last = t;
            any = true;
        } else {
            if t < first {
                first = t;
            }
            last = last.max(t);
        }
    }
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs_for(workers: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
        workers
            .iter()
            .map(|r| {
                (
                    *r,
                    (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect(),
                )
            })
            .collect()
    }

    fn quick_options() -> InitOptions {
        InitOptions {
            synth: SynthConfig {
                anneal_iters: 24,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Options with a generous fault horizon, so deliberately late
    /// test workers are relayed rather than declared dead.
    fn patient_options() -> InitOptions {
        InitOptions {
            relay: RelayConfig {
                fault_floor: SimDuration::from_millis(500.0),
                ..Default::default()
            },
            ..quick_options()
        }
    }

    #[test]
    fn end_to_end_allreduce_matches_sum() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let tensor = ByteSize::from_kib(64);
        let elems = 64 * 1024 / 4;
        let workers = cc.workers().to_vec();
        let inputs = inputs_for(&workers, elems);
        let report = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs.clone()))
            .expect("healthy fabric");
        for w in &workers {
            let out = &report.outputs[w];
            for i in [0usize, 17, elems - 1] {
                let expect: f32 = workers.iter().map(|r| inputs[r][i]).sum();
                assert!((out[i] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn adaptive_allreduce_waits_for_small_skew() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let tensor = ByteSize::from_mib(16);
        let mut ready = BTreeMap::new();
        for r in cc.workers().to_vec() {
            ready.insert(r, SimTime::from_secs(r.0 as f64 * 1e-5));
        }
        let report = cc
            .allreduce_adaptive(tensor, &ready, None)
            .expect("healthy fabric");
        assert!(matches!(report.decision, Decision::WaitAll { .. }));
        assert!(report.faults.is_empty());
    }

    #[test]
    fn adaptive_allreduce_proceeds_past_heavy_straggler() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, patient_options());
        cc.setup();
        let tensor = ByteSize::from_mib(16);
        let workers = cc.workers().to_vec();
        let mut ready = BTreeMap::new();
        for r in &workers {
            ready.insert(*r, SimTime::ZERO);
        }
        // One worker 60 ms late (not the root): far beyond the
        // break-even point but inside the fault horizon.
        let strategy_root = {
            let s = cc.strategy_for(Primitive::AllReduce, tensor);
            s.subs[0].root.unwrap()
        };
        let straggler = workers
            .iter()
            .copied()
            .find(|r| *r != strategy_root)
            .unwrap();
        ready.insert(straggler, SimTime::from_secs(0.06));
        let report = cc
            .allreduce_adaptive(tensor, &ready, None)
            .expect("healthy fabric");
        match &report.decision {
            Decision::Partial { relays, start, .. } => {
                assert_eq!(relays, &vec![straggler]);
                // Phase 1 starts well before the straggler is ready.
                assert!(start.as_secs() < 0.06, "start {start}");
            }
            other => panic!("expected partial, got {other:?}"),
        }
        // Phase 2 needs the late tensor, so completion follows it.
        assert!(
            report.finish.as_secs() > 0.06,
            "phase2 needs the late tensor"
        );
        assert!(report.faults.is_empty(), "{:?}", report.faults);
    }

    #[test]
    fn adaptive_partial_preserves_the_sum() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, patient_options());
        cc.setup();
        let tensor = ByteSize::from_kib(64);
        let elems = 64 * 1024 / 4;
        let workers = cc.workers().to_vec();
        let inputs = inputs_for(&workers, elems);
        let mut ready = BTreeMap::new();
        for r in &workers {
            ready.insert(*r, SimTime::ZERO);
        }
        let strategy_root = {
            let s = cc.strategy_for(Primitive::AllReduce, tensor);
            s.subs[0].root.unwrap()
        };
        let straggler = workers
            .iter()
            .copied()
            .find(|r| *r != strategy_root)
            .unwrap();
        ready.insert(straggler, SimTime::from_secs(0.04));
        let report = cc
            .allreduce_adaptive(tensor, &ready, Some(inputs.clone()))
            .expect("healthy fabric");
        assert!(matches!(report.decision, Decision::Partial { .. }));
        // Two-phase aggregation is numerically a full allreduce.
        for w in &workers {
            let out = &report.outputs[w];
            for i in [0usize, 101, elems - 1] {
                let expect: f32 = workers.iter().map(|r| inputs[r][i]).sum();
                assert!((out[i] - expect).abs() < 1e-3, "elem {i}");
            }
        }
    }

    #[test]
    fn missing_worker_is_declared_faulty_and_excludable() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let tensor = ByteSize::from_mib(4);
        let workers = cc.workers().to_vec();
        let mut ready = BTreeMap::new();
        for r in &workers {
            ready.insert(*r, SimTime::ZERO);
        }
        // Rank 7 never reports.
        ready.remove(&Rank(7));
        let report = cc
            .allreduce_adaptive(tensor, &ready, None)
            .expect("healthy fabric");
        assert_eq!(report.faults, vec![Rank(7)]);
        cc.exclude_workers(&report.faults);
        assert_eq!(cc.workers().len(), 7);
        // Training continues among survivors.
        let again = cc
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        assert!(again.finish.as_secs() > 0.0);
    }

    #[test]
    fn allgather_concatenates_rank_order() {
        let c = Cluster::homogeneous_a100(1);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let tensor = ByteSize::from_kib(16);
        let elems = 16 * 1024 / 4;
        let workers = cc.workers().to_vec();
        let inputs = inputs_for(&workers, elems);
        let report = cc
            .allgather(tensor, &BTreeMap::new(), Some(inputs.clone()))
            .expect("healthy fabric");
        for w in &workers {
            let out = &report.outputs[w];
            assert_eq!(out.len(), elems * workers.len());
            for (j, root) in workers.iter().enumerate() {
                assert_eq!(
                    &out[j * elems..(j + 1) * elems],
                    &inputs[root][..],
                    "slot {j}"
                );
            }
        }
    }

    #[test]
    fn reduce_scatter_shards_the_aggregate() {
        let c = Cluster::homogeneous_a100(1);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let workers = cc.workers().to_vec();
        let n = workers.len();
        let shard_elems = 1024usize;
        let tensor = ByteSize::from_bytes((n * shard_elems * 4) as u64);
        let inputs = inputs_for(&workers, n * shard_elems);
        let report = cc
            .reduce_scatter(tensor, &BTreeMap::new(), Some(inputs.clone()))
            .expect("healthy fabric");
        for (j, w) in workers.iter().enumerate() {
            let out = &report.outputs[w];
            assert_eq!(out.len(), shard_elems);
            for i in [0usize, shard_elems - 1] {
                let expect: f32 = workers.iter().map(|r| inputs[r][j * shard_elems + i]).sum();
                assert!((out[i] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn reprofile_keeps_graph_when_stable_and_rebuilds_on_change() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let tensor = ByteSize::from_mib(8);
        let _ = cc.strategy_for(Primitive::AllReduce, tensor);
        let stable = cc.reprofile();
        assert!(!stable.changed, "no change expected on a quiet fabric");
        assert_eq!(stable.solving, SimDuration::ZERO);
        // Halve one NIC: re-synthesis must trigger.
        let eg = c.nic_egress_link(adapcc_simnet::cluster::InstanceId(0));
        cc.set_fabric_factors(vec![(eg, 0.5)]);
        let shifted = cc.reprofile();
        assert!(shifted.changed);
        assert!(shifted.total() > stable.total());
    }

    #[test]
    fn periodic_profiling_fires_on_schedule() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        cc.set_profile_period(3);
        let tensor = ByteSize::from_mib(4);
        for _ in 0..2 {
            let _ = cc
                .allreduce(tensor, &BTreeMap::new(), None)
                .expect("healthy fabric");
        }
        assert!(cc.last_reconstruct().is_none(), "not due yet");
        let _ = cc
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        let r = cc.last_reconstruct().expect("third iteration triggers");
        assert!(r.profiling.as_secs() > 0.0);
        assert!(!r.changed, "quiet fabric: no re-synthesis");
    }

    #[test]
    fn elastic_scale_out_admits_new_instance() {
        let c = Cluster::homogeneous_a100(3);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        // Start with the first two instances only.
        cc.set_workers((0..8).map(Rank).collect());
        let tensor = ByteSize::from_kib(64);
        let elems = 16 * 1024;
        let inputs8 = inputs_for(cc.workers(), elems);
        let before = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs8))
            .expect("healthy fabric");
        assert_eq!(before.outputs.len(), 8);
        // Instance 2 joins.
        let scale = cc.add_workers(&(8..12).map(Rank).collect::<Vec<_>>());
        assert!(
            scale.detection > SimDuration::ZERO,
            "new instance must be detected"
        );
        assert_eq!(cc.workers().len(), 12);
        let inputs12 = inputs_for(cc.workers(), elems);
        let after = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs12.clone()))
            .expect("healthy fabric");
        assert_eq!(after.outputs.len(), 12);
        let expect: f32 = cc.workers().iter().map(|r| inputs12[r][3]).sum();
        assert!((after.outputs[&Rank(9)][3] - expect).abs() < 1e-2);
    }

    #[test]
    fn scale_out_within_known_instances_skips_detection() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        cc.set_workers(vec![Rank(0), Rank(1), Rank(4), Rank(5)]);
        let scale = cc.add_workers(&[Rank(2), Rank(6)]);
        assert_eq!(scale.detection, SimDuration::ZERO);
        assert_eq!(cc.workers().len(), 6);
    }

    #[test]
    #[should_panic(expected = "already part of the job")]
    fn double_admission_rejected() {
        let c = Cluster::homogeneous_a100(1);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let _ = cc.add_workers(&[Rank(0)]);
    }

    // ---- fault recovery ----

    #[test]
    fn transient_flap_is_retried_and_recovers() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        // Flap every NIC link of instance 0 for 40ms: long enough to
        // trip the stall deadline, short enough that backoff outlives
        // it (25ms + 50ms puts the third attempt past the heal).
        let mut schedule = FaultSchedule::new();
        for link in nic_links(&c, InstanceId(0)) {
            schedule.push(Fault::LinkDown {
                link,
                from: SimTime::ZERO,
                until: SimTime::from_secs(0.040),
            });
        }
        cc.inject_faults(schedule);
        let rep = cc
            .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
            .expect("flap heals before retries run out");
        assert!(rep.faults.is_empty(), "transient fault excludes nobody");
        assert_eq!(cc.workers().len(), 8, "no worker was excluded");
        let log = cc.recovery_log();
        assert!(
            log.iter()
                .any(|e| matches!(e, RecoveryEvent::Detected { .. })),
            "{log:?}"
        );
        assert!(
            log.iter()
                .any(|e| matches!(e, RecoveryEvent::Retrying { .. })),
            "{log:?}"
        );
        assert!(
            log.iter()
                .any(|e| matches!(e, RecoveryEvent::Recovered { .. })),
            "{log:?}"
        );
        assert!(
            !log.iter()
                .any(|e| matches!(e, RecoveryEvent::Excluded { .. })),
            "{log:?}"
        );
    }

    #[test]
    fn worker_crash_is_excluded_and_job_continues() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
            rank: Rank(5),
            at: SimTime::ZERO,
        }));
        let tensor = ByteSize::from_kib(64);
        let elems = (tensor.as_u64() / 4) as usize;
        let workers = cc.workers().to_vec();
        let inputs = inputs_for(&workers, elems);
        let rep = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs.clone()))
            .expect("a single crash must be recoverable");
        assert_eq!(rep.faults, vec![Rank(5)]);
        assert_eq!(cc.workers().len(), 7);
        // The recovered collective sums over exactly the survivors.
        let expect: f32 = cc.workers().iter().map(|r| inputs[r][3]).sum();
        for w in cc.workers() {
            assert!((rep.outputs[w][3] - expect).abs() < 1e-3);
        }
        assert!(!rep.outputs.contains_key(&Rank(5)));
        assert!(cc
            .recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Excluded { ranks, .. } if ranks == &[Rank(5)])));
    }

    #[test]
    fn nic_failure_excludes_whole_instance() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        cc.inject_faults(FaultSchedule::new().with(Fault::NicFail {
            instance: InstanceId(1),
            at: SimTime::ZERO,
        }));
        let rep = cc
            .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
            .expect("the healthy server carries on");
        assert_eq!(rep.faults, vec![Rank(4), Rank(5), Rank(6), Rank(7)]);
        assert_eq!(cc.workers(), &[Rank(0), Rank(1), Rank(2), Rank(3)]);
    }

    #[test]
    fn insufficient_survivors_is_reported() {
        let c = Cluster::homogeneous_a100(1);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let mut schedule = FaultSchedule::new();
        for rank in [1, 2, 3] {
            schedule.push(Fault::WorkerCrash {
                rank: Rank(rank),
                at: SimTime::ZERO,
            });
        }
        cc.inject_faults(schedule);
        let err = cc
            .allreduce(ByteSize::from_kib(64), &BTreeMap::new(), None)
            .expect_err("one survivor cannot run a collective");
        assert!(
            matches!(err, AdapCCError::InsufficientSurvivors { .. }),
            "{err}"
        );
    }

    #[test]
    fn broadcast_from_excluded_root_is_invalid() {
        let c = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
            rank: Rank(5),
            at: SimTime::ZERO,
        }));
        let tensor = ByteSize::from_kib(64);
        cc.allreduce(tensor, &BTreeMap::new(), None)
            .expect("crash recovery");
        assert_eq!(cc.workers().len(), 7);
        let err = cc
            .broadcast(Rank(5), tensor, &BTreeMap::new(), None)
            .expect_err("dead root cannot broadcast");
        assert!(matches!(err, AdapCCError::InvalidRequest(_)), "{err}");
    }

    use adapcc_simnet::cluster::{Cluster, InstanceId};
    use adapcc_simnet::faults::Fault;
}
