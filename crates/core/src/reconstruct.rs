//! Graph reconstruction accounting (paper Sec. VI-E, Fig. 19(c)).
//!
//! AdapCC reconstructs its communication graph *in place*: re-profile
//! the links, re-solve the optimization, re-run the transmission-
//! context set-up — no checkpoint, no job restart. The NCCL
//! counterpart requires terminating the job: checkpoint the model,
//! relaunch the processes, rebuild the process group, restore the
//! model. This module carries the cost breakdown of both paths so the
//! Fig. 19(c) harness can print them side by side.

use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use serde::{Deserialize, Serialize};

/// Cost breakdown of one AdapCC in-place reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructReport {
    /// On-the-fly profiling pass (training blocked).
    pub profiling: SimDuration,
    /// Strategy re-synthesis (our solver's measured wall time — the
    /// stand-in for the paper's Gurobi solve time).
    pub solving: SimDuration,
    /// Transmission-context re-set-up, charged only when the graph
    /// actually changed.
    pub setup: SimDuration,
    /// Whether the re-profiled links changed enough to re-synthesize.
    pub changed: bool,
}

impl ReconstructReport {
    /// Total wall time of the reconstruction.
    pub fn total(&self) -> SimDuration {
        self.profiling + self.solving + self.setup
    }
}

/// Cost breakdown of the NCCL-style restart AdapCC avoids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartCost {
    /// Checkpointing gradients/model to stable storage.
    pub checkpoint: SimDuration,
    /// Tearing down and relaunching the training processes.
    pub relaunch: SimDuration,
    /// Rebuilding the NCCL process group (communicator init grows with
    /// scale).
    pub process_group: SimDuration,
    /// Restoring the model into GPU memory.
    pub restore: SimDuration,
}

impl RestartCost {
    /// Total restart time.
    pub fn total(&self) -> SimDuration {
        self.checkpoint + self.relaunch + self.process_group + self.restore
    }
}

/// Storage bandwidth assumed for checkpoint/restore (a shared NFS-ish
/// 1 GB/s — conservative for the paper's cluster).
fn checkpoint_bandwidth_bytes_per_sec() -> f64 {
    1.0e9
}

/// Modeled strategy re-synthesis latency for a job of `gpus` workers,
/// calibrated to the paper's reported MILP solve times (a fixed solver
/// warm-up plus a per-worker term; Sec. VI-E measures seconds at the
/// scales of Fig. 19(c)).
///
/// The fault-recovery path charges this to the *simulated* session
/// clock instead of the local annealer's wall time: simulated time
/// must be deterministic and machine-independent, and our annealer is
/// far cheaper than the Gurobi solves the paper budgets for.
pub fn modeled_solve_cost(gpus: usize) -> SimDuration {
    SimDuration::from_secs(0.9 + 0.03 * gpus as f64)
}

/// Fraction of the cold solve a warm-started re-synthesis is billed:
/// the plan cache's seed skips candidate generation and all but a
/// short polish anneal (1/8 of the iterations), leaving only the
/// analytic chunk sweep and fraction balancing — an 8× discount,
/// comfortably past the ≥5× reduction Fig. 19(c)'s warm-cache
/// scenario demonstrates.
pub const WARM_SOLVE_FRACTION: f64 = 0.125;

/// Modeled latency of a warm-started re-synthesis for a job of `gpus`
/// workers (see [`WARM_SOLVE_FRACTION`]).
pub fn modeled_warm_solve_cost(gpus: usize) -> SimDuration {
    SimDuration::from_secs(modeled_solve_cost(gpus).as_secs() * WARM_SOLVE_FRACTION)
}

/// The restart cost a static library pays to adopt a new graph:
/// checkpoint + relaunch + process-group rebuild + restore, for a
/// model of `model` bytes across `gpus` workers.
///
/// # Panics
///
/// Panics if `gpus` is zero.
pub fn nccl_restart_cost(model: ByteSize, gpus: usize) -> RestartCost {
    assert!(gpus > 0, "restart needs at least one GPU");
    let io = model.as_f64() / checkpoint_bandwidth_bytes_per_sec();
    RestartCost {
        checkpoint: SimDuration::from_secs(io),
        // Process teardown + CUDA context + framework re-init.
        relaunch: SimDuration::from_secs(8.0),
        // NCCL communicator bootstrap scales with the ring size.
        process_group: SimDuration::from_secs(1.5 + 0.12 * gpus as f64),
        restore: SimDuration::from_secs(io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_scales_with_model_and_gpus() {
        let small = nccl_restart_cost(ByteSize::from_mib(200), 8);
        let big = nccl_restart_cost(ByteSize::from_mib(600), 48);
        assert!(big.total() > small.total());
        assert!(big.checkpoint > small.checkpoint);
        assert!(big.process_group > small.process_group);
    }

    #[test]
    fn restart_is_many_seconds() {
        let c = nccl_restart_cost(ByteSize::from_mib(528), 24);
        assert!(c.total().as_secs() > 10.0, "{}", c.total());
    }

    #[test]
    fn report_total_sums_parts() {
        let r = ReconstructReport {
            profiling: SimDuration::from_millis(80.0),
            solving: SimDuration::from_millis(400.0),
            setup: SimDuration::from_millis(30.0),
            changed: true,
        };
        assert!((r.total().as_millis() - 510.0).abs() < 1e-9);
    }
}
