//! The chunk-pipelined executor (paper Sec. V).
//!
//! Executes synthesized [`Strategy`] graphs over the simulated fabric:
//! every sub-collective's flows are lowered to *segments* (maximal
//! aggregation-free route stretches), chunks move hop-by-hop with
//! store-and-forward pipelining, aggregation kernels synchronize
//! same-offset chunks and charge launch + reduction time, AllReduce
//! pipelines its Reduce and reverse-Broadcast stages chunk-by-chunk at
//! the root, and TCP paths pay the host-staging overhead per chunk.
//!
//! Timing rides the [`NetSim`] fluid engine, so concurrent
//! sub-collectives and unrelated traffic contend exactly as eq. 3
//! models. The data plane is real: when inputs are supplied, actual
//! `f32` buffers are accumulated at kernel points, which is what makes
//! the accuracy experiment (Fig. 19(b)) honest.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use adapcc_simnet::cluster::{Cluster, Path, Rank};
use adapcc_simnet::engine::{NetSim, SimEvent};
use adapcc_simnet::faults::FaultSchedule;
use adapcc_simnet::hardware::kernel_launch_overhead;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::strategy::Strategy;
use adapcc_topo::logical::{EdgeId, EdgeKind, LogicalNode, LogicalTopology};

use crate::error::{AdapCCError, FaultKind, FaultReport};

/// Default per-hop deadline multiplier over the hop's solo α–β cost.
///
/// Pipelined chunks legitimately share links with sibling
/// sub-collectives and sibling requests, so a healthy hop can run well
/// past its uncontended time; 16x stays clear of that while still
/// catching stalls quickly. (The paper's relay layer uses `T_fault` =
/// 5x at iteration granularity; per-hop granularity needs more slack
/// because contention concentrates on single links.)
pub const DEFAULT_DEADLINE_MULTIPLIER: f64 = 16.0;

/// Fleet size (in instances) at which the executor turns on the
/// engine's completion coalescing. Below it the exact drain cascade is
/// kept — its event stream is pinned by golden traces; at or above it
/// the sub-picosecond cascade spacing is collapsed per wave (see
/// `NetSim::with_completion_coalescing`).
pub const COALESCE_INSTANCE_THRESHOLD: usize = 64;

/// Fleet size (in instances) at which the executor switches the
/// engine to the incremental (dirty-frontier) allocator. Below it the
/// exact fleet-wide filling is kept — its event stream is pinned
/// bit-for-bit by golden traces; at or above it per-event work scales
/// with the touched flow component instead of every live flow, which
/// is what keeps events/sec flat at cluster scale (see
/// `NetSim::with_incremental_allocator`). Deliberately the same knee
/// as coalescing: both are scale-gated engine modes with
/// f64-rounding-scale timing deltas and full determinism.
pub const INCREMENTAL_INSTANCE_THRESHOLD: usize = 64;

/// Floor on any hop deadline, so microsecond-scale chunks do not trip
/// their deadline on transient queueing.
fn deadline_floor() -> SimDuration {
    SimDuration::from_millis(5.0)
}

/// One collective to execute.
#[derive(Debug)]
pub struct ExecutionRequest<'a> {
    /// The strategy (any primitive; AllReduce is stage-pipelined
    /// internally, AllGather/ReduceScatter are composed by the
    /// communicator before reaching the executor).
    pub strategy: &'a Strategy,
    /// Per-rank tensor size. Must be a multiple of 4 bytes (f32).
    pub tensor: ByteSize,
    /// When each worker's tensor becomes ready (missing ranks: 0).
    pub ready: BTreeMap<Rank, SimTime>,
    /// Real input data per rank (length = tensor elements); omit for
    /// timing-only runs (large benchmarks).
    pub inputs: Option<BTreeMap<Rank, Vec<f32>>>,
}

impl<'a> ExecutionRequest<'a> {
    /// A timing-only request with all workers ready at time zero.
    pub fn timing(strategy: &'a Strategy, tensor: ByteSize) -> Self {
        ExecutionRequest {
            strategy,
            tensor,
            ready: BTreeMap::new(),
            inputs: None,
        }
    }

    /// Attaches worker ready times.
    pub fn with_ready(mut self, ready: BTreeMap<Rank, SimTime>) -> Self {
        self.ready = ready;
        self
    }

    /// Attaches real input data.
    pub fn with_inputs(mut self, inputs: BTreeMap<Rank, Vec<f32>>) -> Self {
        self.inputs = Some(inputs);
        self
    }
}

/// One recorded transfer span (tracing).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Request index within the batch.
    pub request: usize,
    /// Sub-collective index within the lowered batch.
    pub sub: usize,
    /// Chunk index.
    pub chunk: usize,
    /// Human-readable hop description, e.g. `gpu1->nic0`.
    pub hop: String,
    /// Transfer start instant.
    pub start: SimTime,
    /// Transfer completion instant.
    pub end: SimTime,
}

/// Result of one request within a batch.
#[derive(Debug, Clone)]
pub struct RequestReport {
    /// Instant the request's last sink chunk finalized.
    pub finish: SimTime,
    /// Output tensors per sink rank (present when inputs were given).
    pub outputs: BTreeMap<Rank, Vec<f32>>,
}

/// Result of an executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Instant the whole batch finished.
    pub finish: SimTime,
    /// Per-request results, in request order.
    pub requests: Vec<RequestReport>,
    /// Total bytes put on physical links (pipelined chunks included).
    pub bytes_on_wire: u64,
    /// Recorded transfer spans (empty unless tracing was enabled).
    pub trace: Vec<TraceSpan>,
}

impl BatchReport {
    /// Renders the trace as a time-ordered textual timeline (one line
    /// per transfer), the debugging view a `NCCL_DEBUG`-style knob
    /// would print.
    pub fn timeline(&self) -> String {
        let mut spans = self.trace.clone();
        spans.sort_by(|a, b| a.start.cmp(&b.start).then(a.end.cmp(&b.end)));
        let mut out = String::new();
        for s in &spans {
            out.push_str(&format!(
                "[{:>10.3}ms..{:>10.3}ms] req{} sub{} chunk{:>4} {}\n",
                s.start.as_millis(),
                s.end.as_millis(),
                s.request,
                s.sub,
                s.chunk,
                s.hop
            ));
        }
        out
    }
}

/// The executor.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, Rank};
/// use adapcc_simnet::units::ByteSize;
/// use adapcc_topo::detect::Detector;
/// use adapcc_profile::profiler::Profiler;
/// use adapcc_synth::{Primitive, SynthRequest, Synthesizer};
/// use adapcc::executor::{ExecutionRequest, Executor};
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
/// let profile = Profiler::new(&cluster, &topo, 1).run().links;
/// let req = SynthRequest::new(Primitive::AllReduce, ByteSize::from_mib(16), 2,
///                             (0..8).map(Rank).collect());
/// let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
/// let exec = Executor::new(&cluster, &topo);
/// let report = exec.execute(&[ExecutionRequest::timing(&strategy, ByteSize::from_mib(16))]);
/// assert!(report.finish.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    cluster: &'a Cluster,
    topo: &'a LogicalTopology,
    factors: Vec<(adapcc_simnet::cluster::LinkId, f64)>,
    tracing: bool,
    telemetry: adapcc_telemetry::Telemetry,
    /// Fault schedule armed on every run's fabric, with the session
    /// clock offset at which the run starts. Attaching a schedule also
    /// enables per-hop deadline timers and the completion audit.
    faults: Option<(FaultSchedule, SimTime)>,
    deadline_multiplier: f64,
}

// ---------- lowered IR ----------

/// A node *visit*: routes may legitimately revisit a node (a broadcast
/// enters a NIC, descends to the instance leader, and leaves through
/// the same NIC), and each visit needs independent chunk state. `gen`
/// is the number of earlier occurrences of `node` on the same route;
/// flows sharing a route prefix share generations, so segment
/// deduplication still collapses common prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct VNode {
    node: LogicalNode,
    gen: u8,
}

impl VNode {
    fn first(node: LogicalNode) -> Self {
        VNode { node, gen: 0 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    start: VNode,
    end: VNode,
    edges: Vec<EdgeId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubKind {
    Reduce,
    Broadcast,
    PointToPoint,
}

/// Point-to-point data mapping of one segment: source tensor offset,
/// sink tensor offset, slice length in elements.
#[derive(Debug, Clone, Copy)]
struct P2pRange {
    src_off: usize,
    dst_off: usize,
    len: usize,
}

#[derive(Debug)]
struct LoweredSub {
    request: usize,
    kind: SubKind,
    /// Element range of the tensor this sub carries (tree kinds).
    elem_off: usize,
    elem_len: usize,
    chunk_elems: usize,
    segments: Vec<Segment>,
    out_segs: BTreeMap<VNode, Vec<usize>>,
    /// node-visit -> inputs required to finalize a chunk (incoming
    /// segments plus one if the node contributes its own data).
    required: BTreeMap<VNode, usize>,
    contributes: BTreeSet<VNode>,
    kernels: BTreeSet<VNode>,
    sinks: BTreeSet<VNode>,
    /// AllReduce stage chaining: when this sub's root finalizes chunk
    /// k, chunk k becomes ready at the same node of sub `stage_link`.
    stage_link: Option<usize>,
    root: Option<VNode>,
    p2p_ranges: Vec<P2pRange>,
}

#[derive(Debug, Clone, Copy)]
enum Task {
    Hop {
        sub: usize,
        seg: usize,
        hop: usize,
        chunk: usize,
    },
    Kernel {
        sub: usize,
        slot: usize,
        chunk: usize,
    },
    OwnReady {
        sub: usize,
        slot: usize,
    },
    /// Deadline timer for the in-flight transfer of hop task
    /// `hop_task`; ignored if that transfer already completed.
    HopDeadline {
        hop_task: usize,
    },
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Finalize {
        sub: usize,
        slot: usize,
        chunk: usize,
    },
    StartSegs {
        sub: usize,
        slot: usize,
        chunk: usize,
    },
    Deliver {
        sub: usize,
        seg: usize,
        chunk: usize,
    },
}

#[derive(Debug, Default)]
struct HopState {
    busy: bool,
    queue: VecDeque<usize>,
}

#[derive(Debug)]
struct NodeState {
    node: VNode,
    arrived: Vec<usize>,
    finalized: Vec<bool>,
    kernel_busy: bool,
    kernel_queue: VecDeque<usize>,
    acc: Option<Vec<f32>>,
    /// Regions of `acc` actually written (p2p sinks).
    written: Vec<(usize, usize)>,
}

/// All mutable state of one run, grouped so helper methods can borrow
/// it coherently.
struct RunState<'c> {
    sim: NetSim<'c>,
    tasks: Vec<Task>,
    hops: Vec<Vec<Vec<HopState>>>,
    nodes: Vec<Vec<NodeState>>,
    slot_of: Vec<BTreeMap<VNode, usize>>,
    worklist: VecDeque<Action>,
    bytes_on_wire: u64,
    finish: SimTime,
    req_finish: Vec<SimTime>,
    /// In-flight transfer start times by task id (tracing only).
    hop_started: HashMap<usize, SimTime>,
    trace: Vec<TraceSpan>,
    /// Hop-task ids with a transfer still on the wire (fault detection
    /// only): a deadline firing while its hop is here means a stall.
    open: HashSet<usize>,
    /// Chunk enqueue instants by (sub, seg, hop, chunk), recorded when
    /// a chunk queues behind a busy hop (telemetry only).
    telem_enqueued: HashMap<(usize, usize, usize, usize), SimTime>,
    /// In-flight transfer (enqueue, start, bytes) by task id
    /// (telemetry only).
    telem_open: HashMap<usize, (SimTime, SimTime, u64)>,
}

impl<'a> Executor<'a> {
    /// An executor over a cluster and its logical topology.
    pub fn new(cluster: &'a Cluster, topo: &'a LogicalTopology) -> Self {
        Executor {
            cluster,
            topo,
            factors: Vec::new(),
            tracing: false,
            telemetry: adapcc_telemetry::Telemetry::disabled(),
            faults: None,
            deadline_multiplier: DEFAULT_DEADLINE_MULTIPLIER,
        }
    }

    /// Records a [`TraceSpan`] for every chunk transfer (costs memory
    /// proportional to the number of transfers; off by default).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a telemetry sink: every run emits an `execute` span,
    /// a per-link [`adapcc_telemetry::FlowRecord`] for every chunk
    /// transfer (bytes, enqueue/start/finish, request/sub/chunk), and
    /// `exec.*` counters. The handle's offset places the run on the
    /// session timeline.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Arms `schedule` on every run's fabric, shifted so that sim time
    /// zero corresponds to `offset` on the session clock (see
    /// [`FaultSchedule::arm`]). Attaching a schedule also turns on
    /// per-hop deadline timers and the end-of-run completion audit, so
    /// a faulted run returns a classified [`FaultReport`] from
    /// [`Executor::try_execute`] instead of hanging or finishing
    /// silently incomplete.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule, offset: SimTime) -> Self {
        self.faults = Some((schedule, offset));
        self
    }

    /// Overrides the per-hop deadline multiplier (default
    /// [`DEFAULT_DEADLINE_MULTIPLIER`]). A hop whose transfer exceeds
    /// `multiplier x` its uncontended α–β cost is declared stalled.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not greater than 1.
    pub fn with_deadline_multiplier(mut self, multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier > 1.0,
            "deadline multiplier must exceed 1: {multiplier}"
        );
        self.deadline_multiplier = multiplier;
        self
    }

    /// Applies live capacity factors (trace-driven bandwidth
    /// variability) to the fabric every request runs over.
    pub fn with_capacity_factors(
        mut self,
        factors: &[(adapcc_simnet::cluster::LinkId, f64)],
    ) -> Self {
        self.factors = factors.to_vec();
        self
    }

    /// Executes all requests concurrently on one fabric.
    ///
    /// # Panics
    ///
    /// Panics if a strategy fails validation, a tensor is not
    /// f32-aligned, a supplied input buffer has the wrong length, an
    /// AlltoAll with data has a tensor not divisible by the participant
    /// count (shards must align), or an attached fault schedule faults
    /// the run (use [`Executor::try_execute`] to handle faults).
    pub fn execute(&self, requests: &[ExecutionRequest<'_>]) -> BatchReport {
        match self.try_execute(requests) {
            Ok(report) => report,
            Err(AdapCCError::InvalidRequest(msg)) => panic!("{msg}"),
            Err(e) => panic!("execution fault without recovery: {e}"),
        }
    }

    /// Executes all requests concurrently on one fabric, returning a
    /// typed error instead of panicking: malformed requests yield
    /// [`AdapCCError::InvalidRequest`], and — when a fault schedule is
    /// attached — a stalled or aborted run yields a classified
    /// [`AdapCCError::Fault`] rather than hanging.
    pub fn try_execute(
        &self,
        requests: &[ExecutionRequest<'_>],
    ) -> Result<BatchReport, AdapCCError> {
        for r in requests {
            if let Err(e) = r.strategy.validate(self.topo) {
                return Err(AdapCCError::InvalidRequest(format!(
                    "strategy must validate before execution: {e:?}"
                )));
            }
            if r.tensor.as_u64() % 4 != 0 {
                return Err(AdapCCError::InvalidRequest(
                    "tensor must be f32-aligned".into(),
                ));
            }
            let elems = (r.tensor.as_u64() / 4) as usize;
            if let Some(inputs) = &r.inputs {
                for (rank, buf) in inputs {
                    if buf.len() != elems {
                        return Err(AdapCCError::InvalidRequest(format!(
                            "input of {rank} has wrong length: {} vs {elems}",
                            buf.len()
                        )));
                    }
                }
                if r.strategy.primitive == Primitive::AllToAll {
                    let n = r.strategy.participants().len();
                    if !elems.is_multiple_of(n.max(1)) {
                        return Err(AdapCCError::InvalidRequest(
                            "alltoall with data needs shard-aligned tensors".into(),
                        ));
                    }
                }
            }
        }
        let mut subs = Vec::new();
        for (ri, r) in requests.iter().enumerate() {
            self.lower_request(ri, r, &mut subs);
        }
        self.run(requests, &subs).map_err(AdapCCError::Fault)
    }

    // ---------- lowering ----------

    fn lower_request(&self, ri: usize, req: &ExecutionRequest<'_>, out: &mut Vec<LoweredSub>) {
        let elems = (req.tensor.as_u64() / 4) as usize;
        match req.strategy.primitive {
            Primitive::Reduce | Primitive::ReduceScatter => {
                self.lower_tree(ri, req.strategy, elems, SubKind::Reduce, None, out);
            }
            Primitive::Broadcast | Primitive::AllGather => {
                self.lower_tree(ri, req.strategy, elems, SubKind::Broadcast, None, out);
            }
            Primitive::AllReduce => {
                let bcast = req.strategy.reversed(self.topo, Primitive::Broadcast);
                let base = out.len();
                let n_subs = req.strategy.subs.len();
                self.lower_tree(
                    ri,
                    req.strategy,
                    elems,
                    SubKind::Reduce,
                    Some(base + n_subs),
                    out,
                );
                let mut tmp = Vec::new();
                self.lower_tree(ri, &bcast, elems, SubKind::Broadcast, None, &mut tmp);
                out.append(&mut tmp);
            }
            Primitive::AllToAll => self.lower_alltoall(ri, req, elems, out),
        }
    }

    fn lower_tree(
        &self,
        ri: usize,
        strategy: &Strategy,
        elems: usize,
        kind: SubKind,
        stage_link_base: Option<usize>,
        out: &mut Vec<LoweredSub>,
    ) {
        let parts = partition_elems(strategy, elems);
        for (m, sub) in strategy.subs.iter().enumerate() {
            let (off, len) = parts[m];
            let mut segments: Vec<Segment> = Vec::new();
            let mut contributes = BTreeSet::new();
            let mut kernels = BTreeSet::new();
            let mut sinks = BTreeSet::new();
            let mut incoming: BTreeMap<VNode, BTreeSet<usize>> = BTreeMap::new();
            // Broadcast replicas on a shared route prefix must ride the
            // wire once: split segments at fan-out nodes (distinct
            // successors among flows) so identical prefixes dedup.
            // Split also at every flow *destination*: in a chain
            // broadcast one replica stops where others pass through,
            // and only a boundary there lets the shared prefix dedup.
            let mut fan_out: BTreeSet<LogicalNode> = BTreeSet::new();
            if kind == SubKind::Broadcast {
                let mut succ: BTreeMap<LogicalNode, BTreeSet<LogicalNode>> = BTreeMap::new();
                for f in &sub.flows {
                    let nodes = f.nodes(self.topo);
                    for w in nodes.windows(2) {
                        succ.entry(w[0]).or_default().insert(w[1]);
                    }
                    fan_out.insert(f.dst);
                }
                for (n, s) in succ {
                    if s.len() >= 2 {
                        fan_out.insert(n);
                    }
                }
            }
            if kind == SubKind::Reduce {
                // The root participates with its own tensor too.
                if let Some(root) = sub.root {
                    contributes.insert(VNode::first(LogicalNode::Gpu(root)));
                }
            }
            for f in &sub.flows {
                if kind == SubKind::Reduce {
                    contributes.insert(VNode::first(f.src));
                }
                // Walk the route with per-flow visit generations so a
                // re-entered node gets independent chunk state.
                let mut visits: BTreeMap<LogicalNode, u8> = BTreeMap::new();
                visits.insert(f.src, 1);
                let mut seg_start = VNode::first(f.src);
                let mut seg_edges = Vec::new();
                let mut sink_vnode = seg_start;
                for e in &f.route {
                    let edge = self.topo.edge(*e);
                    seg_edges.push(*e);
                    let gen_ref = visits.entry(edge.to).or_insert(0);
                    let here = VNode {
                        node: edge.to,
                        gen: *gen_ref,
                    };
                    *gen_ref += 1;
                    sink_vnode = here;
                    if sub.aggregates_at(edge.to) || edge.to == f.dst || fan_out.contains(&edge.to)
                    {
                        let seg = Segment {
                            start: seg_start,
                            end: here,
                            edges: std::mem::take(&mut seg_edges),
                        };
                        let idx = match segments.iter().position(|s| *s == seg) {
                            Some(i) => i,
                            None => {
                                segments.push(seg);
                                segments.len() - 1
                            }
                        };
                        incoming.entry(here).or_default().insert(idx);
                        seg_start = here;
                    }
                }
                sinks.insert(sink_vnode);
            }
            if kind == SubKind::Broadcast {
                contributes.clear();
                if let Some(root) = sub.root {
                    contributes.insert(VNode::first(LogicalNode::Gpu(root)));
                } else if let Some(f) = sub.flows.first() {
                    contributes.insert(VNode::first(f.src));
                }
            }
            let mut out_segs: BTreeMap<VNode, Vec<usize>> = BTreeMap::new();
            for (i, s) in segments.iter().enumerate() {
                out_segs.entry(s.start).or_default().push(i);
            }
            let touched: BTreeSet<VNode> = segments
                .iter()
                .flat_map(|s| [s.start, s.end])
                .chain(contributes.iter().copied())
                .collect();
            let mut required = BTreeMap::new();
            for n in &touched {
                let inc = incoming.get(n).map_or(0, BTreeSet::len);
                let own = usize::from(contributes.contains(n));
                required.insert(*n, inc + own);
                if kind == SubKind::Reduce && sub.aggregates_at(n.node) && inc + own >= 2 {
                    kernels.insert(*n);
                }
            }
            if kind == SubKind::Reduce {
                sinks.clear();
                if let Some(root) = sub.root {
                    sinks.insert(VNode::first(LogicalNode::Gpu(root)));
                } else if let Some(f) = sub.flows.first() {
                    sinks.insert(VNode::first(f.dst));
                }
            }
            let chunk_elems = ((sub.chunk.as_u64() / 4) as usize).clamp(1, len.max(1));
            out.push(LoweredSub {
                request: ri,
                kind,
                elem_off: off,
                elem_len: len,
                chunk_elems,
                segments,
                out_segs,
                required,
                contributes,
                kernels,
                sinks,
                stage_link: stage_link_base.map(|b| b + m),
                root: sub.root.map(|r| VNode::first(LogicalNode::Gpu(r))),
                p2p_ranges: Vec::new(),
            });
        }
    }

    fn lower_alltoall(
        &self,
        ri: usize,
        req: &ExecutionRequest<'_>,
        elems: usize,
        out: &mut Vec<LoweredSub>,
    ) {
        let strategy = req.strategy;
        let participants = strategy.participants();
        let n = participants.len().max(1);
        let index_of: HashMap<Rank, usize> = participants
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, i))
            .collect();
        let shard_sizes = split_elems(elems, n);
        let mut shard_off = vec![0usize; n];
        for j in 1..n {
            shard_off[j] = shard_off[j - 1] + shard_sizes[j - 1];
        }
        let fracs: Vec<f64> = strategy.subs.iter().map(|s| s.fraction).collect();
        for (m, sub) in strategy.subs.iter().enumerate() {
            let mut segments = Vec::new();
            let mut p2p_ranges = Vec::new();
            let mut sinks = BTreeSet::new();
            let mut contributes = BTreeSet::new();
            let mut out_segs: BTreeMap<VNode, Vec<usize>> = BTreeMap::new();
            let mut max_len = 0usize;
            // Every GPU is both a source and a sink in AlltoAll; the
            // two roles get distinct visit generations (gen 0 sends,
            // gen 1 receives) so a source's own readiness cannot
            // finalize its sink state.
            let mut inbound: BTreeMap<VNode, usize> = BTreeMap::new();
            for f in &sub.flows {
                let (LogicalNode::Gpu(src), LogicalNode::Gpu(dst)) = (f.src, f.dst) else {
                    panic!("alltoall flows connect GPUs");
                };
                let si = index_of[&src];
                let di = index_of[&dst];
                // Message src->dst: shard `di` of src's tensor, landing at
                // shard `si` of dst's tensor. Sub m carries its slice.
                let (s_off, s_len) = frac_slice(shard_sizes[di], &fracs, m);
                let (d_off, _d_len) = frac_slice(shard_sizes[si], &fracs, m);
                let sink = VNode {
                    node: f.dst,
                    gen: 1,
                };
                segments.push(Segment {
                    start: VNode::first(f.src),
                    end: sink,
                    edges: f.route.clone(),
                });
                p2p_ranges.push(P2pRange {
                    src_off: shard_off[di] + s_off,
                    dst_off: shard_off[si] + d_off,
                    len: s_len,
                });
                max_len = max_len.max(s_len);
                sinks.insert(sink);
                *inbound.entry(sink).or_insert(0) += 1;
                contributes.insert(VNode::first(f.src));
                out_segs
                    .entry(VNode::first(f.src))
                    .or_default()
                    .push(segments.len() - 1);
            }
            let chunk_elems = ((sub.chunk.as_u64() / 4) as usize).clamp(1, max_len.max(1));
            let mut required: BTreeMap<VNode, usize> =
                contributes.iter().map(|c| (*c, 1)).collect();
            required.extend(inbound);
            out.push(LoweredSub {
                request: ri,
                kind: SubKind::PointToPoint,
                elem_off: 0,
                elem_len: max_len,
                chunk_elems,
                segments,
                out_segs,
                required,
                contributes,
                kernels: BTreeSet::new(),
                sinks,
                stage_link: None,
                root: None,
                p2p_ranges,
            });
        }
    }

    // ---------- event loop ----------

    fn run(
        &self,
        requests: &[ExecutionRequest<'_>],
        subs: &[LoweredSub],
    ) -> Result<BatchReport, FaultReport> {
        let collect: Vec<bool> = requests.iter().map(|r| r.inputs.is_some()).collect();
        // Cluster-scale fleets drain synchronized chunk waves whose
        // exact-mode completion cascade costs one rate filling per
        // finisher; coalescing collapses each wave to one instant (and
        // one filling). Small fleets stay in exact mode, whose event
        // stream is pinned bit-for-bit by golden traces.
        let coalesce = self.cluster.instance_count() >= COALESCE_INSTANCE_THRESHOLD;
        // At the same knee, flip to the incremental allocator: chunk
        // waves then pay one frontier refill per touched component
        // rather than a fleet-wide filling per event (coalescing
        // becomes moot — incremental completions are per-flow events
        // with no harvest cascade).
        let incremental = self.cluster.instance_count() >= INCREMENTAL_INSTANCE_THRESHOLD;
        let mut sim = NetSim::new(self.cluster)
            .with_incremental_allocator(incremental)
            .with_completion_coalescing(coalesce && !incremental);
        for (l, f) in &self.factors {
            sim.set_capacity_factor(*l, *f);
        }
        if let Some((schedule, offset)) = &self.faults {
            schedule.arm(&mut sim, *offset);
        }
        let mut st = RunState {
            sim,
            tasks: Vec::new(),
            hops: Vec::new(),
            nodes: Vec::new(),
            slot_of: Vec::new(),
            worklist: VecDeque::new(),
            bytes_on_wire: 0,
            finish: SimTime::ZERO,
            req_finish: vec![SimTime::ZERO; requests.len()],
            hop_started: HashMap::new(),
            trace: Vec::new(),
            open: HashSet::new(),
            telem_enqueued: HashMap::new(),
            telem_open: HashMap::new(),
        };
        for sub in subs {
            st.hops.push(
                sub.segments
                    .iter()
                    .map(|s| s.edges.iter().map(|_| HopState::default()).collect())
                    .collect(),
            );
            let mut slots = BTreeMap::new();
            let mut states = Vec::new();
            let touched: BTreeSet<VNode> = sub
                .segments
                .iter()
                .flat_map(|s| [s.start, s.end])
                .chain(sub.contributes.iter().copied())
                .collect();
            let n_chunks = chunk_count(sub);
            for n in touched {
                slots.insert(n, states.len());
                let acc = if collect[sub.request] && sub.kind != SubKind::PointToPoint {
                    Some(vec![0.0f32; sub.elem_len])
                } else {
                    None
                };
                states.push(NodeState {
                    node: n,
                    arrived: vec![0; n_chunks],
                    finalized: vec![false; n_chunks],
                    kernel_busy: false,
                    kernel_queue: VecDeque::new(),
                    acc,
                    written: Vec::new(),
                });
            }
            st.slot_of.push(slots);
            st.nodes.push(states);
        }

        // Seed own data and schedule readiness timers.
        for (si, sub) in subs.iter().enumerate() {
            let is_chained = subs.iter().any(|o| o.stage_link == Some(si));
            for n in &sub.contributes {
                if is_chained && Some(*n) == sub.root {
                    continue; // fed chunk-by-chunk by the reduce stage
                }
                let slot = st.slot_of[si][n];
                let LogicalNode::Gpu(rank) = &n.node else {
                    continue;
                };
                let req = &requests[sub.request];
                if sub.kind != SubKind::PointToPoint {
                    if let (Some(inputs), Some(acc)) = (&req.inputs, &mut st.nodes[si][slot].acc) {
                        if let Some(buf) = inputs.get(rank) {
                            acc.copy_from_slice(&buf[sub.elem_off..sub.elem_off + sub.elem_len]);
                        }
                    }
                }
                let at = req.ready.get(rank).copied().unwrap_or(SimTime::ZERO);
                st.tasks.push(Task::OwnReady { sub: si, slot });
                let token = st.tasks.len() as u64 - 1;
                st.sim
                    .schedule_timer(at.duration_since(SimTime::ZERO), token);
            }
        }

        loop {
            while let Some(action) = st.worklist.pop_front() {
                self.apply(requests, subs, &mut st, action);
            }
            let Some(ev) = st.sim.step() else { break };
            let task = st.tasks[ev.token() as usize];
            match (ev, task) {
                (SimEvent::Timer { .. }, Task::OwnReady { sub: si, slot }) => {
                    for chunk in 0..chunk_count(&subs[si]) {
                        st.nodes[si][slot].arrived[chunk] += 1;
                        self.try_finalize(subs, &mut st, si, slot, chunk);
                    }
                }
                (
                    SimEvent::Timer { .. },
                    Task::Kernel {
                        sub: si,
                        slot,
                        chunk,
                    },
                ) => {
                    st.nodes[si][slot].kernel_busy = false;
                    st.worklist.push_back(Action::Finalize {
                        sub: si,
                        slot,
                        chunk,
                    });
                    if let Some(next) = st.nodes[si][slot].kernel_queue.pop_front() {
                        self.start_kernel(subs, &mut st, si, slot, next);
                    }
                }
                (
                    SimEvent::TransferDone { .. },
                    Task::Hop {
                        sub: si,
                        seg,
                        hop,
                        chunk,
                    },
                ) => {
                    st.open.remove(&(ev.token() as usize));
                    if self.tracing {
                        if let Some(start) = st.hop_started.remove(&(ev.token() as usize)) {
                            let edge = subs[si].segments[seg].edges[hop];
                            let e = self.topo.edge(edge);
                            st.trace.push(TraceSpan {
                                request: subs[si].request,
                                sub: si,
                                chunk,
                                hop: format!("{}->{}", e.from, e.to),
                                start,
                                end: st.sim.now(),
                            });
                        }
                    }
                    if let Some((enq, start, bytes)) = st.telem_open.remove(&(ev.token() as usize))
                    {
                        let e = self.topo.edge(subs[si].segments[seg].edges[hop]);
                        self.telemetry.flow(adapcc_telemetry::FlowRecord {
                            link: format!("{}->{}", e.from, e.to),
                            bytes,
                            enqueued_secs: enq.as_secs(),
                            start_secs: start.as_secs(),
                            end_secs: st.sim.now().as_secs(),
                            request: subs[si].request,
                            sub: si,
                            chunk,
                        });
                    }
                    st.hops[si][seg][hop].busy = false;
                    if let Some(c) = st.hops[si][seg][hop].queue.pop_front() {
                        self.start_hop(subs, &mut st, si, seg, hop, c);
                    }
                    if hop + 1 < subs[si].segments[seg].edges.len() {
                        self.enqueue_hop(subs, &mut st, si, seg, hop + 1, chunk);
                    } else {
                        st.worklist.push_back(Action::Deliver {
                            sub: si,
                            seg,
                            chunk,
                        });
                    }
                }
                (
                    SimEvent::TransferAborted { .. },
                    Task::Hop {
                        sub: si,
                        seg,
                        hop,
                        chunk,
                    },
                ) => {
                    st.open.remove(&(ev.token() as usize));
                    let at = st.sim.now();
                    let edge = subs[si].segments[seg].edges[hop];
                    return Err(self.fault_report(FaultKind::TransferAborted, at, edge, chunk));
                }
                (SimEvent::Timer { .. }, Task::HopDeadline { hop_task }) => {
                    if st.open.contains(&hop_task) {
                        let Task::Hop {
                            sub: si,
                            seg,
                            hop,
                            chunk,
                        } = st.tasks[hop_task]
                        else {
                            unreachable!("deadline timers reference hop tasks");
                        };
                        let at = st.sim.now();
                        let edge = subs[si].segments[seg].edges[hop];
                        return Err(self.fault_report(FaultKind::HopTimeout, at, edge, chunk));
                    }
                }
                (ev, task) => panic!("event/task mismatch: {ev:?} vs {task:?}"),
            }
        }

        // Completion audit (fault-aware runs only): the event queue
        // drained, so anything unfinalized now never finishes — report
        // a stall instead of returning a silently incomplete batch.
        if self.faults.is_some() {
            for (si, sub) in subs.iter().enumerate() {
                for sink in &sub.sinks {
                    let slot = st.slot_of[si][sink];
                    if let Some(chunk) = st.nodes[si][slot].finalized.iter().position(|f| !f) {
                        return Err(FaultReport {
                            kind: FaultKind::Incomplete,
                            at: st.sim.now(),
                            links: Vec::new(),
                            suspects: self.suspects_of(sink.node),
                            hop: format!("sink {} missing chunk {chunk}", sink.node),
                        });
                    }
                }
            }
        }

        if self.telemetry.is_enabled() {
            self.telemetry
                .span("execute", "phase", 0.0, st.finish.as_secs());
            self.telemetry
                .add_counter("exec.bytes_on_wire", st.bytes_on_wire as f64);
            self.telemetry
                .add_counter("exec.requests", requests.len() as f64);
        }

        Ok(self.assemble(requests, subs, st))
    }

    fn apply(
        &self,
        requests: &[ExecutionRequest<'_>],
        subs: &[LoweredSub],
        st: &mut RunState<'_>,
        action: Action,
    ) {
        match action {
            Action::Finalize {
                sub: si,
                slot,
                chunk,
            } => {
                if st.nodes[si][slot].finalized[chunk] {
                    return;
                }
                st.nodes[si][slot].finalized[chunk] = true;
                let sub = &subs[si];
                let node = st.nodes[si][slot].node;
                if sub.sinks.contains(&node) {
                    st.finish = st.finish.max(st.sim.now());
                    st.req_finish[sub.request] = st.req_finish[sub.request].max(st.sim.now());
                }
                if let (Some(link), Some(root)) = (sub.stage_link, sub.root) {
                    if node == root {
                        // The chained broadcast's root visit is its first.
                        let dslot = st.slot_of[link][&root];
                        if st.nodes[si][slot].acc.is_some() {
                            let (a, b) = chunk_range(sub, chunk);
                            let vals: Vec<f32> =
                                st.nodes[si][slot].acc.as_ref().expect("acc")[a..b].to_vec();
                            // The chained broadcast carries the same
                            // partition layout, so ranges coincide.
                            if let Some(dacc) = &mut st.nodes[link][dslot].acc {
                                dacc[a..b].copy_from_slice(&vals);
                            }
                        }
                        st.worklist.push_back(Action::Finalize {
                            sub: link,
                            slot: dslot,
                            chunk,
                        });
                    }
                }
                st.worklist.push_back(Action::StartSegs {
                    sub: si,
                    slot,
                    chunk,
                });
            }
            Action::StartSegs {
                sub: si,
                slot,
                chunk,
            } => {
                let node = st.nodes[si][slot].node;
                let Some(seg_ids) = subs[si].out_segs.get(&node) else {
                    return;
                };
                for &seg in seg_ids.clone().iter() {
                    self.enqueue_hop(subs, st, si, seg, 0, chunk);
                }
            }
            Action::Deliver {
                sub: si,
                seg,
                chunk,
            } => {
                let sub = &subs[si];
                let end = sub.segments[seg].end;
                let start = sub.segments[seg].start;
                let slot = st.slot_of[si][&end];
                let req = &requests[sub.request];
                if sub.kind == SubKind::PointToPoint {
                    if let Some(inputs) = &req.inputs {
                        let r = sub.p2p_ranges[seg];
                        let (a, b) = chunk_range(sub, chunk);
                        let b = b.min(r.len);
                        if a < b {
                            let LogicalNode::Gpu(srank) = start.node else {
                                panic!("gpu")
                            };
                            let vals: Vec<f32> =
                                inputs[&srank][r.src_off + a..r.src_off + b].to_vec();
                            let elems = (req.tensor.as_u64() / 4) as usize;
                            let node = &mut st.nodes[si][slot];
                            let acc = node.acc.get_or_insert_with(|| vec![0.0; elems]);
                            acc[r.dst_off + a..r.dst_off + b].copy_from_slice(&vals);
                            node.written.push((r.dst_off + a, r.dst_off + b));
                        }
                    }
                } else {
                    let sslot = st.slot_of[si][&start];
                    let (a, b) = chunk_range(sub, chunk);
                    if st.nodes[si][sslot].acc.is_some() {
                        let vals: Vec<f32> =
                            st.nodes[si][sslot].acc.as_ref().expect("acc")[a..b].to_vec();
                        if let Some(dacc) = &mut st.nodes[si][slot].acc {
                            match sub.kind {
                                SubKind::Reduce => {
                                    for (d, v) in dacc[a..b].iter_mut().zip(&vals) {
                                        *d += v;
                                    }
                                }
                                SubKind::Broadcast => dacc[a..b].copy_from_slice(&vals),
                                SubKind::PointToPoint => unreachable!(),
                            }
                        }
                    }
                }
                st.nodes[si][slot].arrived[chunk] += 1;
                self.try_finalize(subs, st, si, slot, chunk);
            }
        }
    }

    fn try_finalize(
        &self,
        subs: &[LoweredSub],
        st: &mut RunState<'_>,
        si: usize,
        slot: usize,
        chunk: usize,
    ) {
        let sub = &subs[si];
        let node = st.nodes[si][slot].node;
        let need = sub.required.get(&node).copied().unwrap_or(0).max(1);
        if st.nodes[si][slot].arrived[chunk] < need || st.nodes[si][slot].finalized[chunk] {
            return;
        }
        if sub.kernels.contains(&node) {
            if st.nodes[si][slot].kernel_busy {
                st.nodes[si][slot].kernel_queue.push_back(chunk);
            } else {
                self.start_kernel(subs, st, si, slot, chunk);
            }
        } else {
            st.worklist.push_back(Action::Finalize {
                sub: si,
                slot,
                chunk,
            });
        }
    }

    fn start_kernel(
        &self,
        subs: &[LoweredSub],
        st: &mut RunState<'_>,
        si: usize,
        slot: usize,
        chunk: usize,
    ) {
        let node = st.nodes[si][slot].node;
        let LogicalNode::Gpu(rank) = node.node else {
            panic!("kernels run on GPUs only");
        };
        let (inst, _) = self.cluster.locate(rank);
        let gen = self.cluster.spec(inst).gpu;
        let bytes = chunk_bytes(&subs[si], chunk);
        let dur = kernel_launch_overhead() + gen.reduce_bandwidth().time_for(bytes);
        st.nodes[si][slot].kernel_busy = true;
        st.tasks.push(Task::Kernel {
            sub: si,
            slot,
            chunk,
        });
        let token = st.tasks.len() as u64 - 1;
        st.sim.schedule_timer(dur, token);
    }

    fn enqueue_hop(
        &self,
        subs: &[LoweredSub],
        st: &mut RunState<'_>,
        si: usize,
        seg: usize,
        hop: usize,
        chunk: usize,
    ) {
        if st.hops[si][seg][hop].busy {
            if self.telemetry.is_enabled() {
                st.telem_enqueued
                    .insert((si, seg, hop, chunk), st.sim.now());
            }
            st.hops[si][seg][hop].queue.push_back(chunk);
        } else {
            self.start_hop(subs, st, si, seg, hop, chunk);
        }
    }

    fn start_hop(
        &self,
        subs: &[LoweredSub],
        st: &mut RunState<'_>,
        si: usize,
        seg: usize,
        hop: usize,
        chunk: usize,
    ) {
        let sub = &subs[si];
        let edge = sub.segments[seg].edges[hop];
        let path = self.hop_path(edge);
        let bytes = if sub.kind == SubKind::PointToPoint {
            // Per-segment slice length bounds the chunk.
            let r = sub.p2p_ranges[seg];
            let (a, b) = chunk_range(sub, chunk);
            ByteSize::from_bytes(((b.min(r.len)).saturating_sub(a) * 4) as u64)
        } else {
            chunk_bytes(sub, chunk)
        };
        st.bytes_on_wire += bytes.as_u64();
        st.tasks.push(Task::Hop {
            sub: si,
            seg,
            hop,
            chunk,
        });
        let token = st.tasks.len() as u64 - 1;
        if self.tracing {
            st.hop_started.insert(token as usize, st.sim.now());
        }
        if self.telemetry.is_enabled() {
            let start = st.sim.now();
            let enqueued = st
                .telem_enqueued
                .remove(&(si, seg, hop, chunk))
                .unwrap_or(start);
            st.telem_open
                .insert(token as usize, (enqueued, start, bytes.as_u64()));
        }
        st.sim.submit_transfer(&path, bytes, token);
        st.hops[si][seg][hop].busy = true;
        if self.faults.is_some() {
            // Stall detector: a deadline timer races the transfer. If
            // it fires while the hop is still open, the hop stalled.
            st.open.insert(token as usize);
            let deadline = self.hop_deadline(&path, bytes);
            st.tasks.push(Task::HopDeadline {
                hop_task: token as usize,
            });
            let dl = st.tasks.len() as u64 - 1;
            st.sim.schedule_timer(deadline, dl);
        }
    }

    /// Deadline for one chunk transfer: the hop's uncontended α–β cost
    /// on ground-truth link data (nominal capacity scaled by any live
    /// capacity factors, per-flow caps honoured), times the configured
    /// multiplier, floored so tiny chunks do not trip on noise.
    fn hop_deadline(&self, path: &Path, bytes: ByteSize) -> SimDuration {
        let alpha = self.cluster.path_alpha(path);
        let mut bw = f64::INFINITY;
        for l in &path.links {
            let def = self.cluster.link(*l);
            let factor = self
                .factors
                .iter()
                .find(|(id, _)| id == l)
                .map_or(1.0, |(_, f)| *f);
            let mut b = def.capacity.as_bytes_per_sec() * factor;
            if let Some(cap) = def.per_flow_cap {
                b = b.min(cap.as_bytes_per_sec());
            }
            bw = bw.min(b);
        }
        let beta = if bw.is_finite() && bw > 0.0 {
            SimDuration::from_secs(bytes.as_f64() / bw)
        } else {
            SimDuration::ZERO
        };
        (alpha + beta)
            .scale(self.deadline_multiplier)
            .max(deadline_floor())
    }

    /// Classifies one faulted hop: which physical links it crossed and
    /// which ranks its endpoints implicate.
    fn fault_report(
        &self,
        kind: FaultKind,
        at: SimTime,
        edge: EdgeId,
        chunk: usize,
    ) -> FaultReport {
        let e = self.topo.edge(edge);
        let links = self.hop_path(edge).links;
        let mut suspects = self.suspects_of(e.from);
        suspects.extend(self.suspects_of(e.to));
        suspects.sort_unstable();
        suspects.dedup();
        FaultReport {
            kind,
            at,
            links,
            suspects,
            hop: format!("{}->{} chunk {chunk}", e.from, e.to),
        }
    }

    /// Ranks a faulted logical node implicates: the rank itself for a
    /// GPU, every rank of the instance for a NIC (losing the NIC cuts
    /// them all off the fabric).
    fn suspects_of(&self, node: LogicalNode) -> Vec<Rank> {
        match node {
            LogicalNode::Gpu(r) => vec![r],
            LogicalNode::Nic(inst) => (0..self.cluster.gpus_on(inst))
                .map(|local| self.cluster.rank_of(inst, local))
                .collect(),
        }
    }

    fn assemble(
        &self,
        requests: &[ExecutionRequest<'_>],
        subs: &[LoweredSub],
        st: RunState<'_>,
    ) -> BatchReport {
        let mut reports: Vec<RequestReport> = st
            .req_finish
            .iter()
            .map(|f| RequestReport {
                finish: *f,
                outputs: BTreeMap::new(),
            })
            .collect();
        for (si, sub) in subs.iter().enumerate() {
            if requests[sub.request].inputs.is_none() {
                continue;
            }
            let req = &requests[sub.request];
            let elems = (req.tensor.as_u64() / 4) as usize;
            for sink in &sub.sinks {
                let LogicalNode::Gpu(rank) = &sink.node else {
                    continue;
                };
                let slot = st.slot_of[si][sink];
                let state = &st.nodes[si][slot];
                let Some(acc) = &state.acc else { continue };
                let out = reports[sub.request]
                    .outputs
                    .entry(*rank)
                    .or_insert_with(|| vec![0.0; elems]);
                if sub.kind == SubKind::PointToPoint {
                    for (a, b) in &state.written {
                        out[*a..*b].copy_from_slice(&acc[*a..*b]);
                    }
                } else {
                    out[sub.elem_off..sub.elem_off + sub.elem_len].copy_from_slice(acc);
                }
            }
        }
        // AlltoAll keeps each rank's own shard locally.
        for (ri, req) in requests.iter().enumerate() {
            if req.strategy.primitive != Primitive::AllToAll {
                continue;
            }
            let Some(inputs) = &req.inputs else { continue };
            let participants = req.strategy.participants();
            let n = participants.len();
            let elems = (req.tensor.as_u64() / 4) as usize;
            let shard = split_elems(elems, n.max(1));
            let mut offs = vec![0usize; n];
            for j in 1..n {
                offs[j] = offs[j - 1] + shard[j - 1];
            }
            for (j, rank) in participants.iter().enumerate() {
                let own = inputs[rank][offs[j]..offs[j] + shard[j]].to_vec();
                let out = reports[ri]
                    .outputs
                    .entry(*rank)
                    .or_insert_with(|| vec![0.0; elems]);
                out[offs[j]..offs[j] + shard[j]].copy_from_slice(&own);
            }
        }
        BatchReport {
            finish: st.finish,
            requests: reports,
            bytes_on_wire: st.bytes_on_wire,
            trace: st.trace,
        }
    }

    /// Physical path of a logical edge, including per-chunk staging
    /// overhead on non-GPU-Direct (TCP) network hops.
    fn hop_path(&self, edge: EdgeId) -> Path {
        let e = self.topo.edge(edge);
        let mut path = self.topo.edge_path(self.cluster, edge);
        if e.kind == EdgeKind::Network {
            if let (LogicalNode::Nic(a), LogicalNode::Nic(b)) = (e.from, e.to) {
                let stage = self.cluster.spec(a).nic.staging_overhead()
                    + self.cluster.spec(b).nic.staging_overhead();
                path.extra_alpha += stage;
            }
        }
        path
    }
}

// ---------- free helpers ----------

fn chunk_count(sub: &LoweredSub) -> usize {
    if sub.elem_len == 0 {
        1
    } else {
        sub.elem_len.div_ceil(sub.chunk_elems)
    }
}

/// Element range `[a, b)` of chunk `k`, relative to the sub's
/// partition.
fn chunk_range(sub: &LoweredSub, k: usize) -> (usize, usize) {
    let a = (k * sub.chunk_elems).min(sub.elem_len);
    let b = ((k + 1) * sub.chunk_elems).min(sub.elem_len);
    (a, b)
}

fn chunk_bytes(sub: &LoweredSub, k: usize) -> ByteSize {
    let (a, b) = chunk_range(sub, k);
    ByteSize::from_bytes(((b - a) * 4) as u64)
}

/// Largest-remainder split of `len` items into `n` parts.
fn split_elems(len: usize, n: usize) -> Vec<usize> {
    let base = len / n;
    let rem = len % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// Contiguous (offset, len) slice assigned to fraction `m`.
fn frac_slice(len: usize, fracs: &[f64], m: usize) -> (usize, usize) {
    let sizes = apportion(len, fracs);
    let off: usize = sizes[..m].iter().sum();
    (off, sizes[m])
}

fn apportion(len: usize, fracs: &[f64]) -> Vec<usize> {
    let mut sizes: Vec<usize> = fracs.iter().map(|f| (len as f64 * f) as usize).collect();
    let mut assigned: usize = sizes.iter().sum();
    let n = sizes.len();
    let mut i = 0;
    while assigned < len {
        sizes[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > len {
        let j = sizes
            .iter()
            .position(|s| *s > 0)
            .expect("cannot shrink empty apportionment");
        sizes[j] -= 1;
        assigned -= 1;
    }
    sizes
}

fn partition_elems(strategy: &Strategy, elems: usize) -> Vec<(usize, usize)> {
    let fracs: Vec<f64> = strategy.subs.iter().map(|s| s.fraction).collect();
    let sizes = apportion(elems, &fracs);
    let mut out = Vec::with_capacity(sizes.len());
    let mut off = 0;
    for s in sizes {
        out.push((off, s));
        off += s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_profile::profiler::{LinkProfile, Profiler};
    use adapcc_simnet::cluster::Cluster;
    use adapcc_synth::solver::{SynthRequest, Synthesizer};
    use adapcc_topo::detect::Detector;

    fn setup(cluster: &Cluster) -> (LogicalTopology, LinkProfile) {
        let topo = Detector::new(cluster, 1).run().logical_topology(cluster);
        let profile = Profiler::new(cluster, &topo, 1).without_noise().run().links;
        (topo, profile)
    }

    fn inputs_for(ranks: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
        ranks
            .iter()
            .map(|r| {
                let buf: Vec<f32> = (0..elems)
                    .map(|i| ((r.0 * 31 + i * 7) % 97) as f32 / 9.0)
                    .collect();
                (*r, buf)
            })
            .collect()
    }

    #[test]
    fn reduce_computes_exact_sum() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_kib(64);
        let elems = 64 * 1024 / 4;
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::Reduce,
            tensor,
            3,
            ranks.clone(),
        ));
        let inputs = inputs_for(&ranks, elems);
        let exec = Executor::new(&c, &topo);
        let report = exec
            .execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
        let root = strategy.subs[0].root.expect("rooted");
        let out = &report.requests[0].outputs[&root];
        for i in [0usize, 1, elems / 2, elems - 1] {
            let expect: f32 = ranks.iter().map(|r| inputs[r][i]).sum();
            assert!(
                (out[i] - expect).abs() < 1e-3,
                "elem {i}: got {} want {expect}",
                out[i]
            );
        }
    }

    #[test]
    fn allreduce_delivers_sum_everywhere() {
        let c = Cluster::heterogeneous_2a100_2v100();
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..16).map(Rank).collect();
        let tensor = ByteSize::from_kib(256);
        let elems = 256 * 1024 / 4;
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            4,
            ranks.clone(),
        ));
        let inputs = inputs_for(&ranks, elems);
        let exec = Executor::new(&c, &topo);
        let report = exec
            .execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
        let outputs = &report.requests[0].outputs;
        assert_eq!(outputs.len(), 16, "every rank gets the aggregate");
        for r in &ranks {
            let out = &outputs[r];
            for i in [0usize, elems / 3, elems - 1] {
                let expect: f32 = ranks.iter().map(|x| inputs[x][i]).sum();
                assert!(
                    (out[i] - expect).abs() < 1e-2,
                    "rank {r} elem {i}: got {} want {expect}",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn broadcast_copies_root_tensor() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_kib(64);
        let elems = 64 * 1024 / 4;
        let mut req = SynthRequest::new(Primitive::Broadcast, tensor, 2, ranks.clone());
        req.root = Some(Rank(2));
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
        let inputs = inputs_for(&ranks, elems);
        let exec = Executor::new(&c, &topo);
        let report = exec
            .execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
        for (r, out) in &report.requests[0].outputs {
            assert_ne!(*r, Rank(2));
            assert_eq!(out, &inputs[&Rank(2)], "rank {r} must hold root's tensor");
        }
    }

    #[test]
    fn alltoall_transposes_shards() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        // 8 ranks, shard-aligned tensor: 8 shards of 512 elements.
        let tensor = ByteSize::from_bytes(8 * 512 * 4);
        let elems = 8 * 512;
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllToAll,
            tensor,
            2,
            ranks.clone(),
        ));
        let inputs = inputs_for(&ranks, elems);
        let exec = Executor::new(&c, &topo);
        let report = exec
            .execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
        let shard = 512;
        for (j, dst) in ranks.iter().enumerate() {
            let out = &report.requests[0].outputs[dst];
            for (i, src) in ranks.iter().enumerate() {
                // Shard i of dst's output == shard j of src's input.
                let got = &out[i * shard..(i + 1) * shard];
                let want = &inputs[src][j * shard..(j + 1) * shard];
                assert_eq!(got, want, "dst {dst} src {src}");
            }
        }
    }

    #[test]
    fn straggler_delays_completion() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_mib(16);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            2,
            ranks,
        ));
        let exec = Executor::new(&c, &topo);
        let fast = exec.execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        let mut ready = BTreeMap::new();
        ready.insert(Rank(5), SimTime::from_secs(0.5));
        let slow = exec.execute(&[ExecutionRequest::timing(&strategy, tensor).with_ready(ready)]);
        assert!(slow.finish.as_secs() > 0.5);
        assert!(fast.finish.as_secs() < 0.1);
    }

    #[test]
    fn more_parallelism_helps_on_tcp() {
        let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
        b.add_instances(
            adapcc_simnet::hardware::InstanceSpec::a100_server().with_tcp(),
            4,
        );
        let c = b.build();
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..16).map(Rank).collect();
        let tensor = ByteSize::from_mib(64);
        let exec = Executor::new(&c, &topo);
        let time_for = |m: usize| {
            let s = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
                Primitive::AllReduce,
                tensor,
                m,
                ranks.clone(),
            ));
            exec.execute(&[ExecutionRequest::timing(&s, tensor)])
                .finish
                .as_secs()
        };
        let m1 = time_for(1);
        let m4 = time_for(4);
        // One TCP stream is capped at 20 Gbps; four parallel
        // sub-collectives aggregate toward the 100 Gbps line rate.
        assert!(m4 < m1 * 0.75, "m1={m1} m4={m4}");
    }

    #[test]
    fn timing_only_run_produces_no_outputs() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_mib(32);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            4,
            ranks,
        ));
        let exec = Executor::new(&c, &topo);
        let report = exec.execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        assert!(report.requests[0].outputs.is_empty());
        assert!(report.bytes_on_wire > tensor.as_u64());
        assert!(report.finish.as_secs() > 0.0);
    }

    #[test]
    fn deterministic_execution() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..24).map(Rank).collect();
        let tensor = ByteSize::from_mib(32);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            4,
            ranks,
        ));
        let exec = Executor::new(&c, &topo);
        let a = exec.execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        let b = exec.execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        assert_eq!(a.finish.as_secs().to_bits(), b.finish.as_secs().to_bits());
        assert_eq!(a.bytes_on_wire, b.bytes_on_wire);
    }

    #[test]
    fn tracing_records_every_hop_consistently() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_mib(8);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            2,
            ranks,
        ));
        let traced = Executor::new(&c, &topo).with_tracing();
        let report = traced.execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        assert!(!report.trace.is_empty());
        for span in &report.trace {
            assert!(span.end >= span.start, "{span:?}");
            assert!(span.end <= report.finish);
            assert!(span.hop.contains("->"));
        }
        // Timeline renders one line per span.
        let timeline = report.timeline();
        assert_eq!(timeline.lines().count(), report.trace.len());
        // Untraced runs stay lean and agree on timing.
        let plain =
            Executor::new(&c, &topo).execute(&[ExecutionRequest::timing(&strategy, tensor)]);
        assert!(plain.trace.is_empty());
        assert_eq!(plain.finish, report.finish);
    }

    #[test]
    fn nic_failure_aborts_and_classifies() {
        use adapcc_simnet::cluster::InstanceId;
        use adapcc_simnet::faults::Fault;
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_kib(256);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            3,
            ranks,
        ));
        let schedule = FaultSchedule::new().with(Fault::NicFail {
            instance: InstanceId(1),
            at: SimTime::ZERO,
        });
        let exec = Executor::new(&c, &topo).with_fault_schedule(schedule, SimTime::ZERO);
        let err = exec
            .try_execute(&[ExecutionRequest::timing(&strategy, tensor)])
            .expect_err("the dead NIC must abort the collective");
        let AdapCCError::Fault(report) = err else {
            panic!("expected a classified fault, got {err}");
        };
        assert_eq!(report.kind, FaultKind::TransferAborted);
        assert!(report.is_permanent());
        assert!(
            report.suspects.iter().any(|r| r.0 >= 4),
            "suspects {:?} must implicate the dead instance",
            report.suspects
        );
    }

    #[test]
    fn stalled_link_trips_the_hop_deadline() {
        use adapcc_simnet::cluster::InstanceId;
        use adapcc_simnet::faults::{nic_links, Fault};
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_mib(4);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            3,
            ranks,
        ));
        // Every NIC link of instance 0 flaps for far longer than the
        // collective: inter-instance hops stall at rate zero.
        let downed = nic_links(&c, InstanceId(0));
        let mut schedule = FaultSchedule::new();
        for l in &downed {
            schedule.push(Fault::LinkDown {
                link: *l,
                from: SimTime::ZERO,
                until: SimTime::from_secs(30.0),
            });
        }
        let exec = Executor::new(&c, &topo).with_fault_schedule(schedule, SimTime::ZERO);
        let err = exec
            .try_execute(&[ExecutionRequest::timing(&strategy, tensor)])
            .expect_err("stalled hops must trip their deadline");
        let AdapCCError::Fault(report) = err else {
            panic!("expected a classified fault, got {err}");
        };
        assert_eq!(report.kind, FaultKind::HopTimeout);
        assert!(!report.is_permanent());
        assert!(
            report.links.iter().any(|l| downed.contains(l)),
            "faulted hop links {:?} must cross a downed link {downed:?}",
            report.links
        );
    }

    #[test]
    fn empty_schedule_is_behavior_neutral() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let tensor = ByteSize::from_kib(64);
        let elems = 64 * 1024 / 4;
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            3,
            ranks.clone(),
        ));
        let inputs = inputs_for(&ranks, elems);
        let plain = Executor::new(&c, &topo)
            .execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
        let guarded = Executor::new(&c, &topo)
            .with_fault_schedule(FaultSchedule::new(), SimTime::ZERO)
            .try_execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs)])
            .expect("empty schedule cannot fault");
        assert_eq!(
            plain.finish, guarded.finish,
            "deadlines must not perturb timing"
        );
        for r in &ranks {
            assert_eq!(
                plain.requests[0].outputs[r], guarded.requests[0].outputs[r],
                "bitwise-identical outputs for {r}"
            );
        }
    }

    #[test]
    fn misaligned_tensor_is_invalid_request() {
        let c = Cluster::homogeneous_a100(1);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..4).map(Rank).collect();
        let tensor = ByteSize::from_kib(64);
        let strategy = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            2,
            ranks,
        ));
        let exec = Executor::new(&c, &topo);
        let err = exec
            .try_execute(&[ExecutionRequest::timing(
                &strategy,
                ByteSize::from_bytes(1002),
            )])
            .expect_err("odd byte count is not f32-aligned");
        assert!(
            matches!(&err, AdapCCError::InvalidRequest(msg) if msg.contains("f32-aligned")),
            "{err}"
        );
    }

    #[test]
    fn apportion_preserves_total() {
        for len in [0usize, 1, 7, 1000, 65536] {
            for fracs in [vec![1.0], vec![0.25, 0.25, 0.5], vec![0.3, 0.3, 0.4]] {
                let sizes = apportion(len, &fracs);
                assert_eq!(sizes.iter().sum::<usize>(), len);
            }
        }
    }
}

#[cfg(test)]
mod tcp_debug {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_synth::cost::CostModel;
    use adapcc_synth::solver::{SynthRequest, Synthesizer};
    use adapcc_topo::detect::Detector;

    #[test]
    #[ignore]
    fn diag() {
        let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
        b.add_instances(
            adapcc_simnet::hardware::InstanceSpec::a100_server().with_tcp(),
            4,
        );
        let c = b.build();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        let ranks: Vec<Rank> = (0..16).map(Rank).collect();
        let tensor = ByteSize::from_mib(64);
        let exec = Executor::new(&c, &topo);
        let model = CostModel::new(&topo, &profile);
        for m in [1usize, 2, 4, 8] {
            let s = Synthesizer::new(&topo, &profile).synthesize(&SynthRequest::new(
                Primitive::AllReduce,
                tensor,
                m,
                ranks.clone(),
            ));
            let t = exec
                .execute(&[ExecutionRequest::timing(&s, tensor)])
                .finish
                .as_secs();
            let pred = model.evaluate(&s, tensor).completion.as_secs();
            let chunks: Vec<u64> = s.subs.iter().map(|x| x.chunk.as_u64() / 1024).collect();
            let fracs: Vec<f64> = s
                .subs
                .iter()
                .map(|x| (x.fraction * 100.0).round() / 100.0)
                .collect();
            let flows0 = s.subs[0].flows.len();
            println!("M={m} exec={t:.4}s pred={pred:.4}s chunksKiB={chunks:?} fracs={fracs:?} flows/sub={flows0}");
        }
        // check network edge profile
        for e in topo
            .edges_of_kind(adapcc_topo::logical::EdgeKind::Network)
            .iter()
            .take(2)
        {
            let ab = profile.get(*e).unwrap();
            println!(
                "net edge: stream={:.1}Gbps port={:.1}Gbps alpha={:.1}us",
                ab.bandwidth().as_gbps(),
                ab.port_bandwidth().as_gbps(),
                ab.alpha_secs * 1e6
            );
        }
    }
}
