//! # adapcc
//!
//! A from-scratch Rust reproduction of **AdapCC** (Zhao, Zhang, Wu —
//! *AdapCC: Making Collective Communication in Distributed Machine
//! Learning Adaptive*, ICDCS 2024): an adaptive collective
//! communication library that profiles its links at runtime,
//! synthesizes communication strategies for the observed topology,
//! relays around computation stragglers with an online ski-rental
//! policy, and reconstructs its communication graph without ever
//! restarting the training job.
//!
//! The hardware substrate is the deterministic cluster simulator in
//! [`adapcc_simnet`] (this environment has no GPUs); every control-path
//! component — detection, profiling, synthesis, relay control — runs
//! against timing observations exactly as it would on metal, and the
//! data path moves real `f32` tensors with exact reduction semantics.
//!
//! ## Layout
//!
//! * [`session`] — the user-facing [`AdapCC`] object
//!   (`init` / `setup` / `allreduce` / `allreduce_adaptive` /
//!   `reprofile`, mirroring the paper's Python API).
//! * [`collective`] — the declarative [`CollectiveSpec`] grammar and
//!   the staged pipeline (plan → relay → execute → assemble) every
//!   entry point flows through (Sec. IV-D).
//! * [`executor`] — chunk-pipelined strategy execution (Sec. V),
//!   with per-hop deadline stall detection when faults are injected.
//! * [`error`] — typed fault classification ([`AdapCCError`],
//!   [`FaultReport`]) returned by every public collective.
//! * [`relay`] — the straggler coordinator: ski-rental decisions,
//!   relay assignment, fault detection (Sec. IV-C).
//! * [`behavior`] — the `<isActive, hasRecv, hasKernel, hasSend>`
//!   GPU behaviour abstraction (Sec. IV-C-3).
//! * [`communicator`] — transmission contexts, work/result queues,
//!   set-up cost accounting (Sec. V-A).
//! * [`reconstruct`] — in-place graph reconstruction versus
//!   NCCL-style restart costs (Fig. 19(c)).
//!
//! ## Example
//!
//! ```
//! use adapcc::{AdapCC, InitOptions};
//! use adapcc_simnet::cluster::Cluster;
//! use adapcc_simnet::units::ByteSize;
//!
//! // Two 4-GPU A100 servers on 100 Gbps RDMA.
//! let cluster = Cluster::homogeneous_a100(2);
//! let mut cc = AdapCC::init(&cluster, InitOptions::default());
//! cc.setup();
//! let report = cc
//!     .allreduce(ByteSize::from_mib(64), &Default::default(), None)
//!     .expect("healthy fabric");
//! println!("allreduce finished in {}", report.comm_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod collective;
pub mod communicator;
pub mod ddp;
pub mod error;
pub mod executor;
pub mod reconstruct;
pub mod relay;
pub mod session;

pub use adapcc_synth::group::{GroupAxis, GroupError, ProcessGroup};
pub use behavior::{derive_behaviors, BehaviorTuple};
pub use collective::CollectiveSpec;
pub use communicator::{Communicator, SetupReport};
pub use ddp::{BucketLayout, DdpHook, DdpRoundReport};
pub use error::{AdapCCError, FaultKind, FaultReport, RecoverySummary};
pub use executor::{BatchReport, ExecutionRequest, Executor, RequestReport};
pub use reconstruct::{modeled_solve_cost, nccl_restart_cost, ReconstructReport, RestartCost};
pub use relay::{BuyEstimate, Coordinator, Decision, RelayConfig, RelayStats};
pub use session::{
    AdapCC, GroupHandle, HealthMonitor, HealthPolicy, InitOptions, InitReport, IterationReport,
    RankHealth, RecoveryEvent, RecoveryPolicy, ScaleReport, QUARANTINE_FACTOR,
};
