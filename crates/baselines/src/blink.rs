//! The Blink-like baseline (paper Sec. VI-B, baseline (3)).
//!
//! Blink builds optimal *intra-server* spanning trees over the
//! detected NVLink topology but delegates *inter-server* communication
//! to plain NCCL operations, with an empirically fixed 8 MB chunk.
//! The paper's key observation is that the two stages are **not
//! pipelined**: the intra-server reduction completes before the
//! inter-server stage starts, and the broadcast back is staged the
//! same way. We reproduce that by modelling the collective as three
//! sequential stages (local reduce trees → inter-server NCCL allreduce
//! among leaders → local broadcast trees); the runner in
//! [`crate::runner`] executes them back to back.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::group_by_instance;
use adapcc_synth::strategy::{Flow, Strategy, SubCollective};
use adapcc_topo::logical::{LogicalNode, LogicalTopology};

use crate::nccl::nccl_strategy;

/// Blink's empirically fixed chunk (paper: 8 MB).
pub fn blink_chunk() -> ByteSize {
    ByteSize::from_mib(8)
}

/// The staged Blink plan for one collective.
#[derive(Debug, Clone)]
pub struct BlinkPlan {
    /// Stage 1: per-instance spanning-tree reduces onto local leaders
    /// (executed concurrently, then barrier).
    pub intra_reduce: Vec<Strategy>,
    /// Stage 2: NCCL collective among the leaders (one strategy).
    pub inter: Option<Strategy>,
    /// Stage 3: per-instance broadcast trees back from the leaders.
    pub intra_broadcast: Vec<Strategy>,
    /// The per-instance leaders, in instance order.
    pub leaders: Vec<Rank>,
}

/// Builds the staged Blink plan.
///
/// # Panics
///
/// Panics if `participants` is empty or the primitive is one Blink
/// does not support in the multi-server case (the paper excludes
/// AlltoAll for exactly that reason).
pub fn blink_plan(
    topo: &LogicalTopology,
    primitive: Primitive,
    participants: &[Rank],
) -> BlinkPlan {
    assert!(!participants.is_empty(), "no participants");
    assert!(
        !matches!(primitive, Primitive::AllToAll),
        "blink does not support multi-server alltoall (paper Sec. VI-C)"
    );
    let by_inst = group_by_instance(topo, participants);
    let leaders: Vec<Rank> = by_inst.values().map(|m| m[0]).collect();
    let g = LogicalNode::Gpu;
    let e = |a, b| topo.edge_between(a, b).expect("logical edge");

    // Stage 1: per-instance spanning trees (with full-mesh NVLink the
    // optimal spanning tree is the star; with fragmented wiring the
    // star rides PCIe peer links, just like Blink's packing would).
    let mut intra_reduce = Vec::new();
    for (inst, members) in &by_inst {
        let leader = by_inst[inst][0];
        if members.len() < 2 {
            continue;
        }
        let flows: Vec<Flow> = members
            .iter()
            .filter(|r| **r != leader)
            .map(|r| Flow {
                src: g(*r),
                dst: g(leader),
                route: vec![e(g(*r), g(leader))],
            })
            .collect();
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(leader), true);
        intra_reduce.push(Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: blink_chunk(),
                root: Some(leader),
                flows,
                aggregate,
            }],
        });
        let _ = InstanceId(0);
    }

    // Stage 2: NCCL among the leaders (its own single-channel tree),
    // with Blink's chunking.
    let inter = if leaders.len() > 1 {
        let mut s = nccl_strategy(topo, primitive, &leaders);
        for sub in &mut s.subs {
            sub.chunk = blink_chunk();
        }
        Some(s)
    } else {
        None
    };

    // Stage 3: broadcast trees back (only for allreduce/broadcast).
    let mut intra_broadcast = Vec::new();
    if matches!(primitive, Primitive::AllReduce | Primitive::Broadcast) {
        for strategy in &intra_reduce {
            intra_broadcast.push(strategy.reversed(topo, Primitive::Broadcast));
        }
    }

    BlinkPlan {
        intra_reduce,
        inter,
        intra_broadcast,
        leaders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn topo_for(c: &Cluster) -> LogicalTopology {
        Detector::new(c, 1).run().logical_topology(c)
    }

    fn all(c: &Cluster) -> Vec<Rank> {
        (0..c.gpu_count()).map(Rank).collect()
    }

    #[test]
    fn plan_has_three_stages() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let plan = blink_plan(&topo, Primitive::AllReduce, &all(&c));
        assert_eq!(plan.intra_reduce.len(), 6);
        assert!(plan.inter.is_some());
        assert_eq!(plan.intra_broadcast.len(), 6);
        assert_eq!(plan.leaders.len(), 6);
        for s in plan.intra_reduce.iter().chain(&plan.intra_broadcast) {
            assert_eq!(s.validate(&topo), Ok(()));
        }
        assert_eq!(plan.inter.as_ref().unwrap().validate(&topo), Ok(()));
    }

    #[test]
    fn spanning_trees_are_single_hop_stars() {
        let c = Cluster::homogeneous_a100(2);
        let topo = topo_for(&c);
        let plan = blink_plan(&topo, Primitive::AllReduce, &all(&c));
        for s in &plan.intra_reduce {
            for f in &s.subs[0].flows {
                assert_eq!(f.route.len(), 1, "star over NVLink");
            }
        }
    }

    #[test]
    fn single_instance_skips_inter_stage() {
        let c = Cluster::homogeneous_a100(1);
        let topo = topo_for(&c);
        let plan = blink_plan(&topo, Primitive::AllReduce, &all(&c));
        assert!(plan.inter.is_none());
        assert_eq!(plan.intra_reduce.len(), 1);
    }

    #[test]
    #[should_panic(expected = "alltoall")]
    fn alltoall_unsupported() {
        let c = Cluster::homogeneous_a100(2);
        let topo = topo_for(&c);
        let _ = blink_plan(&topo, Primitive::AllToAll, &all(&c));
    }

    #[test]
    fn fixed_chunk_everywhere() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let plan = blink_plan(&topo, Primitive::AllReduce, &all(&c));
        for s in plan
            .intra_reduce
            .iter()
            .chain(plan.inter.as_ref())
            .chain(&plan.intra_broadcast)
        {
            assert!(s.subs.iter().all(|x| x.chunk == blink_chunk()));
        }
    }
}
