//! Uniform benchmarking runner: executes AdapCC and the three
//! baselines on the same simulated fabric and reports the paper's
//! *algorithm bandwidth* metric (tensor bytes / completion seconds).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use adapcc::executor::{ExecutionRequest, Executor};
use adapcc_plancache::{
    fingerprint, CachedPlan, Fingerprint, FingerprintInputs, Lookup, PlanCache, PlanCacheStats,
};
use adapcc_planserve::{PlanService, ServiceStats};
use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::strategy::Strategy;
use adapcc_topo::logical::LogicalTopology;

use crate::blink::blink_plan;
use crate::msccl::msccl_strategy;
use crate::nccl::nccl_strategy_sized;

/// The communication system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// This library's synthesized strategies (M parallel
    /// sub-collectives, profiled links).
    AdapCc,
    /// The NCCL-like baseline.
    Nccl,
    /// The MSCCL-like baseline.
    Msccl,
    /// The Blink-like staged baseline.
    Blink,
}

impl System {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            System::AdapCc => "AdapCC",
            System::Nccl => "NCCL",
            System::Msccl => "MSCCL",
            System::Blink => "Blink",
        }
    }

    /// All four systems, in the paper's legend order.
    pub fn all() -> [System; 4] {
        [System::AdapCc, System::Nccl, System::Msccl, System::Blink]
    }
}

/// One benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Completion instant (iteration clock).
    pub finish: SimTime,
    /// Completion minus the earliest worker-ready time.
    pub comm_time: SimDuration,
    /// The paper's Algo.bw: tensor bytes per second of completion.
    pub algo_bw_gbytes: f64,
}

/// The runner.
#[derive(Debug, Clone)]
pub struct Runner<'a> {
    cluster: &'a Cluster,
    topo: &'a LogicalTopology,
    profile: &'a LinkProfile,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Synthesizer seed.
    pub seed: u64,
    /// Annealing chains for AdapCC synthesis (1 ≡ the sequential
    /// legacy schedule).
    pub solver_chains: usize,
    /// Worker threads executing those chains (output-invariant).
    pub solver_threads: usize,
    /// Tier decomposition mode for AdapCC synthesis (defaults to
    /// [`adapcc_synth::Hierarchical::Auto`]: two-tier at 64+ GPUs).
    pub hierarchical: adapcc_synth::Hierarchical,
    factors: Vec<(adapcc_simnet::cluster::LinkId, f64)>,
    telemetry: adapcc_telemetry::Telemetry,
    /// Optional fingerprinted strategy store consulted before the
    /// AdapCC synthesizer (baselines are closed-form and never cached).
    plan_cache: Option<RefCell<PlanCache>>,
    /// Optional shared cross-job plan service; takes precedence over
    /// the private `plan_cache` so concurrent runners share solves.
    plan_service: Option<Arc<PlanService>>,
}

impl<'a> Runner<'a> {
    /// A runner with the paper's `M = 4`.
    pub fn new(cluster: &'a Cluster, topo: &'a LogicalTopology, profile: &'a LinkProfile) -> Self {
        Runner {
            cluster,
            topo,
            profile,
            parallelism: 4,
            seed: 0,
            solver_chains: 1,
            solver_threads: 1,
            hierarchical: adapcc_synth::Hierarchical::Auto,
            factors: Vec::new(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
            plan_cache: None,
            plan_service: None,
        }
    }

    /// Attaches a telemetry sink. Runs then emit a `synthesize` phase
    /// span (modeled solver cost for AdapCC, zero-width for baselines
    /// whose strategies are closed-form) followed by the executor's
    /// `execute` span and per-link flow records, all on this sink's
    /// timeline.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Applies live capacity factors (trace-driven variability) to the
    /// fabric of every run.
    pub fn with_capacity_factors(
        mut self,
        factors: &[(adapcc_simnet::cluster::LinkId, f64)],
    ) -> Self {
        self.factors = factors.to_vec();
        self
    }

    /// Overrides AdapCC's parallelism (the Fig. 19(a) sweep).
    pub fn with_parallelism(mut self, m: usize) -> Self {
        self.parallelism = m;
        self
    }

    /// Configures the AdapCC annealer's chain split and worker-thread
    /// count. The strategy depends only on `chains` (and the seed);
    /// `threads` affects wall-clock only and is clamped to `chains`
    /// by the solver.
    pub fn with_solver(mut self, chains: usize, threads: usize) -> Self {
        self.solver_chains = chains.max(1);
        self.solver_threads = threads.max(1);
        self
    }

    /// Overrides the AdapCC synthesizer's tier decomposition mode
    /// (the scale sweeps force [`adapcc_synth::Hierarchical::On`]).
    pub fn with_hierarchical(mut self, mode: adapcc_synth::Hierarchical) -> Self {
        self.hierarchical = mode;
        self
    }

    /// Attaches a plan cache consulted before every AdapCC synthesis.
    /// Exact fingerprint hits skip the solver; shape-only matches
    /// warm-start it. Baseline systems never touch the cache.
    pub fn with_plan_cache(mut self, cache: PlanCache) -> Self {
        self.plan_cache = Some(RefCell::new(cache));
        self
    }

    /// Attaches a shared cross-job plan service consulted before every
    /// AdapCC synthesis — and before the private plan cache, so
    /// concurrent runners (jobs) sharing one service share every solve
    /// through its single-flight admission. Baseline systems never
    /// touch the service.
    pub fn with_plan_service(mut self, service: Arc<PlanService>) -> Self {
        self.plan_service = Some(service);
        self
    }

    /// The shared service's effectiveness counters, if one is attached.
    pub fn plan_service_stats(&self) -> Option<ServiceStats> {
        self.plan_service.as_ref().map(|s| s.stats())
    }

    /// Cache effectiveness counters, if a cache is attached.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| c.borrow().stats())
    }

    /// Publishes `plancache.*` counters to the attached telemetry sink
    /// (no-op without a cache).
    pub fn export_plan_cache_counters(&self) {
        if let Some(cache) = &self.plan_cache {
            cache.borrow().export_counters(&self.telemetry);
        }
    }

    /// Synthesizes/builds the system's strategy for one primitive over
    /// the given participants (not available for Blink, which is
    /// staged — use [`Runner::run`]).
    ///
    /// # Panics
    ///
    /// Panics when called for [`System::Blink`].
    pub fn strategy(
        &self,
        system: System,
        primitive: Primitive,
        tensor: ByteSize,
        participants: &[Rank],
    ) -> Strategy {
        match system {
            System::AdapCc => {
                let mut req =
                    SynthRequest::new(primitive, tensor, self.parallelism, participants.to_vec());
                req.seed = self.seed;
                self.adapcc_strategy(&req, primitive, tensor, participants)
            }
            System::Nccl => nccl_strategy_sized(self.topo, primitive, participants, tensor),
            System::Msccl => msccl_strategy(self.topo, primitive, participants),
            System::Blink => panic!("blink is staged; use Runner::run"),
        }
    }

    /// AdapCC synthesis through the optional plan cache: exact hit →
    /// cached strategy, shape-only match → warm-started solve, miss →
    /// cold solve. Saved modeled solver latency accrues to the cache's
    /// counters; the timeline span in [`Runner::run`] stays the full
    /// modeled cost either way so traces are byte-identical warm or
    /// cold.
    fn adapcc_strategy(
        &self,
        req: &SynthRequest,
        primitive: Primitive,
        tensor: ByteSize,
        participants: &[Rank],
    ) -> Strategy {
        let synth = || {
            Synthesizer::new(self.topo, self.profile)
                .with_config(SynthConfig {
                    anneal_iters: 120,
                    anneal_chains: self.solver_chains,
                    solver_threads: self.solver_threads,
                    hierarchical: self.hierarchical,
                    ..Default::default()
                })
                .with_telemetry(self.telemetry.clone())
        };
        if self.plan_cache.is_none() && self.plan_service.is_none() {
            return synth().synthesize(req);
        }
        let fp = self.plan_fingerprint(req, primitive, tensor, participants);
        if let Some(service) = &self.plan_service {
            let resolved = service.resolve(fp, |seed| {
                if let Some(prev) = seed {
                    if let Some((strategy, seed)) = synth().synthesize_warm(req, &prev.seed) {
                        return (CachedPlan { strategy, seed }, true);
                    }
                }
                let (strategy, seed) = synth().synthesize_with_seed(req);
                (CachedPlan { strategy, seed }, false)
            });
            service.export_counters(&self.telemetry);
            return resolved.plan.strategy.clone();
        }
        let cache = self.plan_cache.as_ref().expect("checked above");
        let full = adapcc::reconstruct::modeled_solve_cost(participants.len());
        let warm = adapcc::reconstruct::modeled_warm_solve_cost(participants.len());
        let mut cache = cache.borrow_mut();
        match cache.lookup(&fp) {
            Lookup::Hit(plan) if plan.strategy.validate(self.topo).is_ok() => {
                cache.note_saved(full);
                return plan.strategy;
            }
            Lookup::Warm(plan) => {
                if let Some((strategy, seed)) = synth().synthesize_warm(req, &plan.seed) {
                    cache.note_saved(adapcc_simnet::time::SimDuration::from_secs(
                        full.as_secs() - warm.as_secs(),
                    ));
                    cache.insert(
                        fp,
                        CachedPlan {
                            strategy: strategy.clone(),
                            seed,
                        },
                    );
                    return strategy;
                }
                cache.warm_fell_back();
            }
            _ => {}
        }
        let (strategy, seed) = synth().synthesize_with_seed(req);
        cache.insert(
            fp,
            CachedPlan {
                strategy: strategy.clone(),
                seed,
            },
        );
        strategy
    }

    /// The canonical cache/service key of one AdapCC synthesis. The
    /// standalone runner has no session, so it quantizes with the
    /// session default `resynth_threshold` (0.15).
    fn plan_fingerprint(
        &self,
        req: &SynthRequest,
        primitive: Primitive,
        tensor: ByteSize,
        participants: &[Rank],
    ) -> Fingerprint {
        let instances = adapcc_synth::solver::group_by_instance(self.topo, participants).len();
        fingerprint(&FingerprintInputs {
            topo: self.topo,
            profile: self.profile,
            participants,
            relays: &[],
            primitive,
            parallelism: self.parallelism,
            tensor,
            root: req.root,
            quantization: 0.15,
            hierarchical: self.hierarchical.enabled_for(participants.len(), instances),
            concurrency: 0,
        })
    }

    /// Runs one collective under the chosen system and returns its
    /// timing. Workers missing from `ready` start at time zero.
    pub fn run(
        &self,
        system: System,
        primitive: Primitive,
        tensor: ByteSize,
        participants: &[Rank],
        ready: &BTreeMap<Rank, SimTime>,
    ) -> RunReport {
        // Strategy construction happens on the control plane; the
        // solver's modeled wall time opens the timeline, and execution
        // is stitched right after it.
        let synth_secs = if self.telemetry.is_enabled() {
            let secs = match system {
                System::AdapCc => {
                    adapcc::reconstruct::modeled_solve_cost(participants.len()).as_secs()
                }
                // Baseline strategies are closed-form: zero-width span.
                _ => 0.0,
            };
            self.telemetry.span("synthesize", "phase", 0.0, secs);
            secs
        } else {
            0.0
        };
        let exec = Executor::new(self.cluster, self.topo)
            .with_capacity_factors(&self.factors)
            .with_telemetry(self.telemetry.at_offset(synth_secs));
        let first = participants
            .iter()
            .map(|r| ready.get(r).copied().unwrap_or(SimTime::ZERO))
            .min()
            .unwrap_or(SimTime::ZERO);
        let finish = match system {
            System::Blink => self.run_blink(primitive, tensor, participants, ready),
            _ => {
                let strategy = self.strategy(system, primitive, tensor, participants);
                let req = ExecutionRequest::timing(&strategy, tensor).with_ready(ready.clone());
                exec.execute(&[req]).finish
            }
        };
        let comm_time = finish.duration_since(first);
        RunReport {
            finish,
            comm_time,
            algo_bw_gbytes: tensor.as_f64() / comm_time.as_secs() / 1e9,
        }
    }

    /// Blink's three sequential, non-pipelined stages.
    fn run_blink(
        &self,
        primitive: Primitive,
        tensor: ByteSize,
        participants: &[Rank],
        ready: &BTreeMap<Rank, SimTime>,
    ) -> SimTime {
        let plan = blink_plan(self.topo, primitive, participants);
        let exec = Executor::new(self.cluster, self.topo)
            .with_capacity_factors(&self.factors)
            .with_telemetry(self.telemetry.clone());
        let run_batch = |strategies: &[Strategy], ready: &BTreeMap<Rank, SimTime>| -> SimTime {
            if strategies.is_empty() {
                return ready.values().copied().max().unwrap_or(SimTime::ZERO);
            }
            let reqs: Vec<ExecutionRequest<'_>> = strategies
                .iter()
                .map(|s| ExecutionRequest::timing(s, tensor).with_ready(ready.clone()))
                .collect();
            exec.execute(&reqs).finish
        };
        let at = |t: SimTime, ranks: &[Rank]| -> BTreeMap<Rank, SimTime> {
            ranks.iter().map(|r| (*r, t)).collect()
        };
        match primitive {
            Primitive::Broadcast => {
                let t1 = match &plan.inter {
                    Some(s) => run_batch(std::slice::from_ref(s), ready),
                    None => ready.values().copied().max().unwrap_or(SimTime::ZERO),
                };
                run_batch(&plan.intra_broadcast, &at(t1, participants))
            }
            Primitive::Reduce => {
                let t1 = run_batch(&plan.intra_reduce, ready);
                match &plan.inter {
                    Some(s) => run_batch(std::slice::from_ref(s), &at(t1, &plan.leaders)),
                    None => t1,
                }
            }
            _ => {
                // AllReduce: reduce-in, allreduce among leaders,
                // broadcast-out — each stage barriered.
                let t1 = run_batch(&plan.intra_reduce, ready);
                let t2 = match &plan.inter {
                    Some(s) => run_batch(std::slice::from_ref(s), &at(t1, &plan.leaders)),
                    None => t1,
                };
                run_batch(&plan.intra_broadcast, &at(t2, participants))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_topo::detect::Detector;

    fn setup(c: &Cluster) -> (LogicalTopology, LinkProfile) {
        let topo = Detector::new(c, 1).run().logical_topology(c);
        let profile = Profiler::new(c, &topo, 1).without_noise().run().links;
        (topo, profile)
    }

    fn all(c: &Cluster) -> Vec<Rank> {
        (0..c.gpu_count()).map(Rank).collect()
    }

    #[test]
    fn adapcc_beats_all_baselines_on_heterogeneous_allreduce() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let runner = Runner::new(&c, &topo, &profile);
        let ranks = all(&c);
        let tensor = ByteSize::from_mib(64);
        let ready = BTreeMap::new();
        let mut bw = BTreeMap::new();
        for sys in System::all() {
            let r = runner.run(sys, Primitive::AllReduce, tensor, &ranks, &ready);
            bw.insert(sys.name(), r.algo_bw_gbytes);
        }
        assert!(bw["AdapCC"] > bw["NCCL"], "{bw:?}");
        assert!(bw["AdapCC"] > bw["MSCCL"], "{bw:?}");
        assert!(bw["AdapCC"] > bw["Blink"], "{bw:?}");
        // Blink's unpipelined stages make it the slowest (paper).
        assert!(bw["Blink"] < bw["NCCL"], "{bw:?}");
    }

    #[test]
    fn speedup_ratios_are_paper_shaped() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let runner = Runner::new(&c, &topo, &profile);
        let ranks = all(&c);
        let tensor = ByteSize::from_mib(256);
        let ready = BTreeMap::new();
        let adapcc = runner
            .run(System::AdapCc, Primitive::AllReduce, tensor, &ranks, &ready)
            .algo_bw_gbytes;
        let nccl = runner
            .run(System::Nccl, Primitive::AllReduce, tensor, &ranks, &ready)
            .algo_bw_gbytes;
        let ratio = adapcc / nccl;
        // Paper Fig. 12: 1.05x-1.29x over NCCL. Allow a wider band for
        // the simulated fabric, but demand the win be material and not
        // absurd.
        assert!(ratio > 1.03 && ratio < 3.0, "AdapCC/NCCL = {ratio}");
    }

    #[test]
    fn alltoall_excludes_blink() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let runner = Runner::new(&c, &topo, &profile);
        let ranks = all(&c);
        let ready = BTreeMap::new();
        for sys in [System::AdapCc, System::Nccl, System::Msccl] {
            let r = runner.run(
                sys,
                Primitive::AllToAll,
                ByteSize::from_mib(32),
                &ranks,
                &ready,
            );
            assert!(r.algo_bw_gbytes > 0.0);
        }
    }

    #[test]
    fn blink_runs_all_three_stages() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let runner = Runner::new(&c, &topo, &profile);
        let ranks = all(&c);
        let ready = BTreeMap::new();
        let ar = runner.run(
            System::Blink,
            Primitive::AllReduce,
            ByteSize::from_mib(32),
            &ranks,
            &ready,
        );
        let red = runner.run(
            System::Blink,
            Primitive::Reduce,
            ByteSize::from_mib(32),
            &ranks,
            &ready,
        );
        assert!(
            ar.comm_time > red.comm_time,
            "allreduce adds the broadcast stage"
        );
    }

    #[test]
    fn plan_cache_hit_replays_the_cold_strategy() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let ranks = all(&c);
        let tensor = ByteSize::from_mib(64);
        let cold = Runner::new(&c, &topo, &profile);
        let want = cold.strategy(System::AdapCc, Primitive::AllReduce, tensor, &ranks);
        let cached = Runner::new(&c, &topo, &profile)
            .with_plan_cache(adapcc_plancache::PlanCache::new(Default::default()));
        let first = cached.strategy(System::AdapCc, Primitive::AllReduce, tensor, &ranks);
        let second = cached.strategy(System::AdapCc, Primitive::AllReduce, tensor, &ranks);
        assert_eq!(first, want, "cold solve through the cache is unchanged");
        assert_eq!(
            second, want,
            "exact hit serves the stored strategy verbatim"
        );
        let stats = cached.plan_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
        assert!(stats.saved.as_secs() > 0.0);
    }

    #[test]
    fn straggler_propagates_into_baseline_timing() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let runner = Runner::new(&c, &topo, &profile);
        let ranks = all(&c);
        let mut ready = BTreeMap::new();
        ready.insert(Rank(3), SimTime::from_secs(0.2));
        let r = runner.run(
            System::Nccl,
            Primitive::AllReduce,
            ByteSize::from_mib(16),
            &ranks,
            &ready,
        );
        assert!(r.finish.as_secs() > 0.2);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_topo::detect::Detector;

    #[test]
    #[ignore]
    fn nccl_breakdown() {
        let c = Cluster::paper_testbed();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        let runner = Runner::new(&c, &topo, &profile);
        let ranks: Vec<Rank> = (0..24).map(Rank).collect();
        let ready = BTreeMap::new();
        let tensor = ByteSize::from_mib(256);
        for (label, prim) in [
            ("reduce", Primitive::Reduce),
            ("allreduce", Primitive::AllReduce),
        ] {
            let r = runner.run(System::Nccl, prim, tensor, &ranks, &ready);
            println!(
                "NCCL {label}: {:.1}ms bw={:.2}GB/s",
                r.comm_time.as_millis(),
                r.algo_bw_gbytes
            );
        }
        // chunk sensitivity
        for kib in [256u64, 512, 1024, 4096, 8192] {
            let mut s = crate::nccl::nccl_strategy(&topo, Primitive::AllReduce, &ranks);
            for sub in &mut s.subs {
                sub.chunk = ByteSize::from_kib(kib);
            }
            let exec = adapcc::executor::Executor::new(&c, &topo);
            let f = exec
                .execute(&[adapcc::executor::ExecutionRequest::timing(&s, tensor)])
                .finish;
            println!("NCCL chunk {kib}KiB: {:.1}ms", f.as_secs() * 1e3);
        }
        // homogeneous 4x A100 for comparison
        let ch = Cluster::homogeneous_a100(4);
        let topoh = Detector::new(&ch, 1).run().logical_topology(&ch);
        let profh = Profiler::new(&ch, &topoh, 1).without_noise().run().links;
        let rh = Runner::new(&ch, &topoh, &profh);
        let ranksh: Vec<Rank> = (0..16).map(Rank).collect();
        let r = rh.run(System::Nccl, Primitive::AllReduce, tensor, &ranksh, &ready);
        println!(
            "NCCL homo16: {:.1}ms bw={:.2}GB/s",
            r.comm_time.as_millis(),
            r.algo_bw_gbytes
        );
        let r = rh.run(
            System::AdapCc,
            Primitive::AllReduce,
            tensor,
            &ranksh,
            &ready,
        );
        println!(
            "AdapCC homo16: {:.1}ms bw={:.2}GB/s",
            r.comm_time.as_millis(),
            r.algo_bw_gbytes
        );
    }
}

#[cfg(test)]
mod diag2 {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_synth::cost::CostModel;
    use adapcc_topo::detect::Detector;

    #[test]
    #[ignore]
    fn hetero_2a2v_exec() {
        let c = Cluster::heterogeneous_2a100_2v100();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        let runner = Runner::new(&c, &topo, &profile);
        let ranks: Vec<Rank> = (0..16).map(Rank).collect();
        let tensor = ByteSize::from_mib(528);
        for sys in [System::AdapCc, System::Nccl, System::Msccl] {
            let r = runner.run(
                sys,
                Primitive::AllReduce,
                tensor,
                &ranks,
                &Default::default(),
            );
            println!(
                "{:<8} exec={:.1}ms bw={:.2}GB/s",
                sys.name(),
                r.comm_time.as_millis(),
                r.algo_bw_gbytes
            );
        }
        // reduce-only exec of the AdapCC strategy
        let mut rs = runner.strategy(System::AdapCc, Primitive::AllReduce, tensor, &ranks);
        rs.primitive = Primitive::Reduce;
        let exec1 = Executor::new(&c, &topo);
        let t_red = exec1
            .execute(&[ExecutionRequest::timing(&rs, tensor)])
            .finish
            .as_secs();
        let mut ns2 = crate::nccl::nccl_strategy(&topo, Primitive::Reduce, &ranks);
        let t_red_n = exec1
            .execute(&[ExecutionRequest::timing(&ns2, tensor)])
            .finish
            .as_secs();
        ns2.primitive = Primitive::Reduce;
        println!(
            "reduce-only: adapcc={:.1}ms nccl={:.1}ms",
            t_red * 1e3,
            t_red_n * 1e3
        );
        // model on NCCL's own strategy
        let ns = crate::nccl::nccl_strategy(&topo, Primitive::AllReduce, &ranks);
        let model0 = CostModel::new(&topo, &profile);
        println!(
            "model(NCCL strategy) = {:.1}ms",
            model0.evaluate(&ns, tensor).completion.as_millis()
        );
        // inspect AdapCC strategy
        let s = runner.strategy(System::AdapCc, Primitive::AllReduce, tensor, &ranks);
        let model = CostModel::new(&topo, &profile);
        println!(
            "pred={:.1}ms M={} root={:?}",
            model.evaluate(&s, tensor).completion.as_millis(),
            s.parallelism(),
            s.subs[0].root
        );
        for (m, sub) in s.subs.iter().enumerate() {
            let netedges: Vec<String> = sub
                .edges()
                .iter()
                .filter(|e| topo.edge(**e).kind == adapcc_topo::logical::EdgeKind::Network)
                .map(|e| format!("{}->{}", topo.edge(*e).from, topo.edge(*e).to))
                .collect();
            println!(
                "  sub{m}: frac={:.2} chunk={}KiB net={:?}",
                sub.fraction,
                sub.chunk.as_u64() / 1024,
                netedges
            );
        }
    }
}
