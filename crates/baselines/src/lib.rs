//! # adapcc-baselines
//!
//! Faithful reimplementations of the *strategy generators* of the
//! three systems the AdapCC paper benchmarks against (Sec. VI-B):
//! [`nccl`] (ring/tree graphs, empirical bandwidth labels, one
//! channel), [`msccl`] (DGX-tuned pareto-optimal sketches with fixed
//! chunks), and [`blink`] (intra-server spanning trees, staged
//! NCCL inter-server, fixed 8 MB chunks). All run on the same
//! executor and simulated fabric as AdapCC via [`runner::Runner`], so
//! every comparison isolates the *strategy*, exactly as the paper's
//! evaluation intends.
//!
//! # Example
//!
//! ```
//! use adapcc_baselines::runner::{Runner, System};
//! use adapcc_profile::profiler::Profiler;
//! use adapcc_simnet::cluster::{Cluster, Rank};
//! use adapcc_simnet::units::ByteSize;
//! use adapcc_synth::Primitive;
//! use adapcc_topo::detect::Detector;
//!
//! let cluster = Cluster::homogeneous_a100(2);
//! let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
//! let profile = Profiler::new(&cluster, &topo, 1).run().links;
//! let runner = Runner::new(&cluster, &topo, &profile);
//! let ranks: Vec<Rank> = (0..8).map(Rank).collect();
//! let r = runner.run(System::Nccl, Primitive::AllReduce,
//!                    ByteSize::from_mib(32), &ranks, &Default::default());
//! assert!(r.algo_bw_gbytes > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blink;
pub mod msccl;
pub mod nccl;
pub mod runner;

pub use blink::{blink_plan, BlinkPlan};
pub use msccl::msccl_strategy;
pub use nccl::nccl_strategy;
pub use runner::{RunReport, Runner, System};
