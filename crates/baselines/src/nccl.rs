//! The NCCL-like baseline (paper Sec. VI-B, baseline (1)).
//!
//! Reproduces the structural choices the paper observes in NCCL v2.14:
//!
//! * **Empirically labelled throughput** — graphs are built from link
//!   *types*, never from measured bandwidth, so a slow NIC or a
//!   degraded link is invisible.
//! * **Single intra-server channel** — data is reduced along one chain
//!   onto the GPU closest to the NIC, leaving most NVLinks idle.
//! * **Binary tree across servers in rank order** — each node assumed
//!   homogeneous; the thinnest NIC becomes the bottleneck.
//! * **One network channel** — a single stream per connection, which
//!   on kernel TCP caps at ~20 Gbps regardless of line rate.
//! * **NVLink ring or bust** — when the allocation has no full NVLink
//!   ring (fragmented `Pairs` wiring), intra-server hops silently fall
//!   back to PCIe (the logical `PciePeer` edges).
//!
//! AlltoAll is not a native NCCL primitive; as in the paper's
//! evaluation it is assembled from `ncclSend`/`ncclRecv` pairs.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::group_by_instance;
use adapcc_synth::strategy::{Flow, Strategy, SubCollective};
use adapcc_topo::logical::{EdgeId, LogicalNode, LogicalTopology};

/// NCCL's pipelining slice (fixed, size-independent).
pub fn nccl_chunk() -> ByteSize {
    ByteSize::from_kib(512)
}

/// NCCL's ring channels for large buffers: the paper observes that
/// NCCL "only launches one channel for inter-server transmission,
/// which fails to saturate the available bandwidth" (Sec. VI-D), so
/// the ring is a single chain.
pub fn nccl_ring_channels() -> usize {
    1
}

/// NCCL's internal algorithm choice, reproduced at the fidelity the
/// paper describes: rings are bandwidth-optimal and picked for large
/// buffers, but only when the cluster *looks* homogeneous to NCCL's
/// type-level view (same GPU generation everywhere); everything else
/// falls back to the tree. The choice never consults measured
/// bandwidth — that blindness is the point of the comparison.
pub fn nccl_picks_ring(topo: &LogicalTopology, participants: &[Rank], tensor: ByteSize) -> bool {
    if tensor < ByteSize::from_mib(16) {
        return false;
    }
    // Homogeneity proxy visible to a type-level inspection: every
    // instance hosts the same number of participating GPUs and the
    // NVLink degree matches. (Our logical topology does not expose GPU
    // models; equal shape is what NCCL's search effectively keys on.)
    let by_inst = group_by_instance(topo, participants);
    let mut sizes: Vec<usize> = by_inst.values().map(Vec::len).collect();
    sizes.dedup();
    if sizes.len() != 1 {
        return false;
    }
    // NVLink degree of the first GPU per instance must match.
    let degree = |r: Rank| {
        topo.edges_from(LogicalNode::Gpu(r))
            .iter()
            .filter(|e| topo.edge(**e).kind == adapcc_topo::logical::EdgeKind::NvLink)
            .count()
    };
    let mut degrees: Vec<usize> = by_inst.values().map(|m| degree(m[0])).collect();
    degrees.dedup();
    degrees.len() == 1
}

/// The rank-ordered multi-channel ring: channel `c` reduces along the
/// ring starting at a rotated offset and broadcasts back, aggregating
/// at every hop — NCCL's bandwidth-optimal algorithm for large
/// homogeneous AllReduce.
pub fn nccl_ring_strategy(
    topo: &LogicalTopology,
    primitive: Primitive,
    participants: &[Rank],
) -> Strategy {
    let g = LogicalNode::Gpu;
    let nic = LogicalNode::Nic;
    let e = |a, b| topo.edge_between(a, b).expect("logical edge");
    let inst = |r: Rank| adapcc_synth::solver::instance_of(topo, r);
    let n = participants.len();
    let channels = nccl_ring_channels().min(n.max(1));
    let mut subs = Vec::with_capacity(channels);
    for c in 0..channels {
        // Rotated ring order; the chain root is the last element.
        let order: Vec<Rank> = (0..n)
            .map(|i| participants[(i + c * n / channels) % n])
            .collect();
        let root = *order.last().expect("non-empty ring");
        // Edge chain between consecutive ring positions.
        let hop = |a: Rank, b: Rank| -> Vec<adapcc_topo::logical::EdgeId> {
            if inst(a) == inst(b) {
                vec![e(g(a), g(b))]
            } else {
                vec![
                    e(g(a), nic(inst(a))),
                    e(nic(inst(a)), nic(inst(b))),
                    e(nic(inst(b)), g(b)),
                ]
            }
        };
        let mut aggregate = BTreeMap::new();
        for r in &order {
            aggregate.insert(g(*r), true);
        }
        let mut flows = Vec::new();
        for (p, r) in order.iter().enumerate() {
            if *r == root {
                continue;
            }
            let mut route = Vec::new();
            for w in order[p..].windows(2) {
                route.extend(hop(w[0], w[1]));
            }
            flows.push(Flow {
                src: g(*r),
                dst: g(root),
                route,
            });
        }
        subs.push(SubCollective {
            fraction: 1.0 / channels as f64,
            chunk: nccl_chunk(),
            root: Some(root),
            flows,
            aggregate,
        });
    }
    let mut s = Strategy {
        primitive: Primitive::Reduce,
        subs,
    };
    match primitive {
        Primitive::Broadcast => s.reversed(topo, Primitive::Broadcast),
        other => {
            s.primitive = other;
            s
        }
    }
}

/// Builds the NCCL-like strategy for a primitive over all
/// participants.
///
/// # Panics
///
/// Panics if `participants` is empty or a required logical edge is
/// missing (cannot happen for detector-built topologies).
pub fn nccl_strategy(
    topo: &LogicalTopology,
    primitive: Primitive,
    participants: &[Rank],
) -> Strategy {
    assert!(!participants.is_empty(), "no participants");
    match primitive {
        Primitive::AllToAll => p2p_strategy(topo, participants, 1, nccl_chunk()),
        Primitive::Broadcast => {
            reduce_tree(topo, participants).reversed(topo, Primitive::Broadcast)
        }
        Primitive::Reduce | Primitive::AllReduce => {
            let mut s = reduce_tree(topo, participants);
            s.primitive = primitive;
            s
        }
        other => panic!("nccl baseline does not model {other}"),
    }
}

/// NCCL's full dispatch: ring for large homogeneous AllReduce, tree
/// otherwise (the entry point the runner uses).
pub fn nccl_strategy_sized(
    topo: &LogicalTopology,
    primitive: Primitive,
    participants: &[Rank],
    tensor: ByteSize,
) -> Strategy {
    if primitive == Primitive::AllReduce && nccl_picks_ring(topo, participants, tensor) {
        nccl_ring_strategy(topo, primitive, participants)
    } else {
        nccl_strategy(topo, primitive, participants)
    }
}

/// The rank-ordered single-channel reduce tree described above.
fn reduce_tree(topo: &LogicalTopology, participants: &[Rank]) -> Strategy {
    let g = LogicalNode::Gpu;
    let nic = LogicalNode::Nic;
    let by_inst = group_by_instance(topo, participants);
    let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
    // Binary tree over instances in *rank order* (id order): parent of
    // instance at position p is position (p-1)/2; root is position 0.
    let pos_of = |inst: InstanceId| insts.iter().position(|i| *i == inst).expect("member");
    // Local leader: the first local rank (the GPU nearest the NIC on
    // our servers).
    let leader = |inst: InstanceId| by_inst[&inst][0];
    let root_inst = insts[0];
    let root = leader(root_inst);
    let e = |a, b| topo.edge_between(a, b).expect("logical edge");

    let mut flows = Vec::new();
    let mut aggregate = BTreeMap::new();
    for (inst, members) in &by_inst {
        // Single intra channel: chain members[n-1] -> ... -> members[0].
        let chain = members.clone();
        for (i, r) in chain.iter().enumerate() {
            if *r == root {
                continue;
            }
            let mut route = Vec::new();
            let mut cursor = *r;
            // Walk down the chain to the leader.
            for next in chain[..i].iter().rev() {
                route.push(e(g(cursor), g(*next)));
                cursor = *next;
            }
            // Climb the instance tree to the root.
            let mut here = *inst;
            while here != root_inst {
                let up = insts[(pos_of(here) - 1) / 2];
                let up_leader = leader(up);
                route.push(e(g(cursor), nic(here)));
                route.push(e(nic(here), nic(up)));
                route.push(e(nic(up), g(up_leader)));
                cursor = up_leader;
                here = up;
            }
            flows.push(Flow {
                src: g(*r),
                dst: g(root),
                route,
            });
        }
        for r in members {
            aggregate.insert(g(*r), true);
        }
    }
    Strategy {
        primitive: Primitive::Reduce,
        subs: vec![SubCollective {
            fraction: 1.0,
            chunk: nccl_chunk(),
            root: Some(root),
            flows,
            aggregate,
        }],
    }
}

/// Direct point-to-point flows (ncclSend/ncclRecv composition, also
/// used by the MSCCL baseline with different parameters).
pub fn p2p_strategy(
    topo: &LogicalTopology,
    participants: &[Rank],
    channels: usize,
    chunk: ByteSize,
) -> Strategy {
    let g = LogicalNode::Gpu;
    let nic = LogicalNode::Nic;
    let e = |a, b| topo.edge_between(a, b).expect("logical edge");
    let inst = |r: Rank| adapcc_synth::solver::instance_of(topo, r);
    let mut flows = Vec::new();
    for &a in participants {
        for &b in participants {
            if a == b {
                continue;
            }
            let (ia, ib) = (inst(a), inst(b));
            let route: Vec<EdgeId> = if ia == ib {
                vec![e(g(a), g(b))]
            } else {
                vec![e(g(a), nic(ia)), e(nic(ia), nic(ib)), e(nic(ib), g(b))]
            };
            flows.push(Flow {
                src: g(a),
                dst: g(b),
                route,
            });
        }
    }
    Strategy {
        primitive: Primitive::AllToAll,
        subs: (0..channels.max(1))
            .map(|_| SubCollective {
                fraction: 1.0 / channels.max(1) as f64,
                chunk,
                root: None,
                flows: flows.clone(),
                aggregate: BTreeMap::new(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn topo_for(c: &Cluster) -> LogicalTopology {
        Detector::new(c, 1).run().logical_topology(c)
    }

    fn all(c: &Cluster) -> Vec<Rank> {
        (0..c.gpu_count()).map(Rank).collect()
    }

    #[test]
    fn single_channel_single_sub() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let s = nccl_strategy(&topo, Primitive::AllReduce, &all(&c));
        assert_eq!(s.parallelism(), 1, "nccl uses one channel");
        assert_eq!(s.validate(&topo), Ok(()));
        assert_eq!(s.subs[0].flows.len(), 23);
    }

    #[test]
    fn root_is_rank_zero_regardless_of_nic_speed() {
        // Build a cluster whose *first* server is the slow one: NCCL
        // still roots there (rank-order, bandwidth-blind).
        let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
        b.add_instance(adapcc_simnet::hardware::InstanceSpec::v100_server());
        b.add_instances(adapcc_simnet::hardware::InstanceSpec::a100_server(), 2);
        let c = b.build();
        let topo = topo_for(&c);
        let s = nccl_strategy(&topo, Primitive::Reduce, &all(&c));
        assert_eq!(s.subs[0].root, Some(Rank(0)));
    }

    #[test]
    fn intra_chain_uses_single_channel() {
        let c = Cluster::homogeneous_a100(1);
        let topo = topo_for(&c);
        let s = nccl_strategy(&topo, Primitive::Reduce, &all(&c));
        // Chain 3->2->1->0: the deepest flow traverses three hops.
        let longest = s.subs[0].flows.iter().map(|f| f.route.len()).max().unwrap();
        assert_eq!(longest, 3);
    }

    #[test]
    fn broadcast_reverses_cleanly() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let s = nccl_strategy(&topo, Primitive::Broadcast, &all(&c));
        assert_eq!(s.validate(&topo), Ok(()));
        assert!(s.subs[0].aggregate.is_empty());
    }

    #[test]
    fn ring_is_picked_for_large_homogeneous_allreduce() {
        let c = Cluster::homogeneous_a100(4);
        let topo = topo_for(&c);
        let ranks = all(&c);
        assert!(nccl_picks_ring(&topo, &ranks, ByteSize::from_mib(256)));
        assert!(
            !nccl_picks_ring(&topo, &ranks, ByteSize::from_mib(4)),
            "latency regime uses trees"
        );
        let hetero = Cluster::heterogeneous_2a100_2v100();
        let th = topo_for(&hetero);
        // Shape-wise identical hetero servers still pass NCCL's blind
        // check — exactly the paper's criticism — but fragmented
        // allocations do not.
        let frag: Vec<Rank> = vec![Rank(0), Rank(1), Rank(4), Rank(5), Rank(8)];
        assert!(!nccl_picks_ring(&th, &frag, ByteSize::from_mib(256)));
    }

    #[test]
    fn ring_strategy_validates_and_chains_every_rank() {
        let c = Cluster::homogeneous_a100(4);
        let topo = topo_for(&c);
        let s = nccl_ring_strategy(&topo, Primitive::AllReduce, &all(&c));
        assert_eq!(s.parallelism(), nccl_ring_channels());
        assert_eq!(s.validate(&topo), Ok(()));
        // The deepest flow walks the whole ring.
        let longest = s.subs[0].flows.iter().map(|f| f.route.len()).max().unwrap();
        assert!(longest >= 15, "{longest}");
    }

    #[test]
    fn sized_dispatch_switches_algorithms() {
        let c = Cluster::homogeneous_a100(4);
        let topo = topo_for(&c);
        let ranks = all(&c);
        let big = nccl_strategy_sized(&topo, Primitive::AllReduce, &ranks, ByteSize::from_mib(256));
        let small = nccl_strategy_sized(&topo, Primitive::AllReduce, &ranks, ByteSize::from_mib(2));
        assert_eq!(big.parallelism(), nccl_ring_channels());
        assert_eq!(small.parallelism(), 1);
    }

    #[test]
    fn alltoall_has_all_pairs_single_channel() {
        let c = Cluster::homogeneous_a100(2);
        let topo = topo_for(&c);
        let s = nccl_strategy(&topo, Primitive::AllToAll, &all(&c));
        assert_eq!(s.parallelism(), 1);
        assert_eq!(s.subs[0].flows.len(), 8 * 7);
        assert_eq!(s.validate(&topo), Ok(()));
    }
}
