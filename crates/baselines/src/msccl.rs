//! The MSCCL-like baseline (paper Sec. VI-B, baseline (2)).
//!
//! MSCCL executes hand- or solver-written algorithms ("sketches") on
//! top of NCCL's runtime. The paper runs the pareto-optimal
//! latency/bandwidth algorithms recommended for DGX-class machines and
//! observes two structural limits:
//!
//! * the sketches are authored for DGX-like *homogeneous* topologies —
//!   actual link properties are never consulted, so heterogeneous NICs
//!   silently throttle the schedule;
//! * the sketch fixes the chunk size, so the latency/pipelining
//!   trade-off is never re-optimized for the tensor at hand.
//!
//! Structurally the DGX-tuned reduce is good intra-server (a NVLink
//! star onto a leader) and bandwidth-oriented inter-server (a chain —
//! ring-style — over the servers in rank order, aggregating at every
//! hop), with two channels.

use std::collections::BTreeMap;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::group_by_instance;
use adapcc_synth::strategy::{Flow, Strategy, SubCollective};
use adapcc_topo::logical::{LogicalNode, LogicalTopology};

use crate::nccl::p2p_strategy;

/// MSCCL sketch-fixed chunk size.
pub fn msccl_chunk() -> ByteSize {
    ByteSize::from_mib(1)
}

/// Channels in the recommended pareto-optimal schedules.
pub fn msccl_channels() -> usize {
    2
}

/// Builds the MSCCL-like strategy for a primitive over all
/// participants.
///
/// # Panics
///
/// Panics if `participants` is empty or the primitive is not one the
/// paper evaluates MSCCL on.
pub fn msccl_strategy(
    topo: &LogicalTopology,
    primitive: Primitive,
    participants: &[Rank],
) -> Strategy {
    assert!(!participants.is_empty(), "no participants");
    match primitive {
        Primitive::AllToAll => p2p_strategy(topo, participants, msccl_channels(), msccl_chunk()),
        Primitive::Broadcast => {
            reduce_chain(topo, participants).reversed(topo, Primitive::Broadcast)
        }
        Primitive::Reduce | Primitive::AllReduce => {
            let mut s = reduce_chain(topo, participants);
            s.primitive = primitive;
            s
        }
        other => panic!("msccl baseline does not model {other}"),
    }
}

/// Intra-server NVLink star onto a per-channel leader; inter-server
/// chain in rank order aggregating at every hop.
fn reduce_chain(topo: &LogicalTopology, participants: &[Rank]) -> Strategy {
    let g = LogicalNode::Gpu;
    let nic = LogicalNode::Nic;
    let by_inst = group_by_instance(topo, participants);
    let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
    let e = |a, b| topo.edge_between(a, b).expect("logical edge");

    let channels = msccl_channels();
    let mut subs = Vec::with_capacity(channels);
    for ch in 0..channels {
        // Channel-rotated leaders (DGX sketches stripe channels over
        // GPUs); the chain root is the last instance's leader.
        let leader = |inst: InstanceId| {
            let members = &by_inst[&inst];
            members[ch % members.len()]
        };
        let root_inst = *insts.last().expect("non-empty");
        let root = leader(root_inst);
        let hop_of = |inst: InstanceId| insts.iter().position(|i| *i == inst).expect("member");

        let mut flows = Vec::new();
        let mut aggregate = BTreeMap::new();
        for (inst, members) in &by_inst {
            let l = leader(*inst);
            aggregate.insert(g(l), true);
            for r in members {
                if *r == root {
                    continue;
                }
                let mut route = Vec::new();
                let mut cursor = *r;
                if *r != l {
                    route.push(e(g(*r), g(l)));
                    cursor = l;
                }
                // Chain onward: inst -> inst+1 -> ... -> last.
                let mut here = *inst;
                while here != root_inst {
                    let up = insts[hop_of(here) + 1];
                    let up_leader = leader(up);
                    route.push(e(g(cursor), nic(here)));
                    route.push(e(nic(here), nic(up)));
                    route.push(e(nic(up), g(up_leader)));
                    cursor = up_leader;
                    here = up;
                }
                flows.push(Flow {
                    src: g(*r),
                    dst: g(root),
                    route,
                });
            }
        }
        subs.push(SubCollective {
            fraction: 1.0 / channels as f64,
            chunk: msccl_chunk(),
            root: Some(root),
            flows,
            aggregate,
        });
    }
    Strategy {
        primitive: Primitive::Reduce,
        subs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn topo_for(c: &Cluster) -> LogicalTopology {
        Detector::new(c, 1).run().logical_topology(c)
    }

    fn all(c: &Cluster) -> Vec<Rank> {
        (0..c.gpu_count()).map(Rank).collect()
    }

    #[test]
    fn two_channels_fixed_chunk() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let s = msccl_strategy(&topo, Primitive::AllReduce, &all(&c));
        assert_eq!(s.parallelism(), 2);
        assert!(s.subs.iter().all(|x| x.chunk == msccl_chunk()));
        assert_eq!(s.validate(&topo), Ok(()));
    }

    #[test]
    fn chain_visits_every_instance() {
        let c = Cluster::paper_testbed();
        let topo = topo_for(&c);
        let s = msccl_strategy(&topo, Primitive::Reduce, &all(&c));
        // A flow from instance 0 crosses 5 network hops to reach the
        // chain end at instance 5.
        let longest = s.subs[0].flows.iter().map(|f| f.route.len()).max().unwrap();
        assert!(longest >= 5 * 3, "chain flows climb every hop: {longest}");
    }

    #[test]
    fn channels_use_distinct_leaders() {
        let c = Cluster::homogeneous_a100(2);
        let topo = topo_for(&c);
        let s = msccl_strategy(&topo, Primitive::Reduce, &all(&c));
        assert_ne!(s.subs[0].root, s.subs[1].root);
    }

    #[test]
    fn alltoall_two_channels() {
        let c = Cluster::homogeneous_a100(2);
        let topo = topo_for(&c);
        let s = msccl_strategy(&topo, Primitive::AllToAll, &all(&c));
        assert_eq!(s.parallelism(), 2);
        assert_eq!(s.validate(&topo), Ok(()));
    }
}
