//! Quickstart: bring up AdapCC on a simulated two-server cluster and
//! run its collectives.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::BTreeMap;

use adapcc::{AdapCC, InitOptions};
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;

fn main() {
    // Two 4-GPU A100 servers on 100 Gbps RDMA — no real hardware:
    // the cluster is the deterministic simulator substrate.
    let cluster = Cluster::homogeneous_a100(2);
    println!(
        "cluster: {} servers, {} GPUs",
        cluster.instance_count(),
        cluster.gpu_count()
    );

    // init() = detect topology + profile links (the paper's adapcc.init()).
    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    let init = cc.init_report();
    println!(
        "init: detection {} + profiling {} = {}",
        init.detection,
        init.profiling,
        init.total()
    );

    // setup() builds the transmission contexts (buffers + IPC handles).
    let setup = cc.setup();
    println!("setup: {} contexts in {}", setup.contexts, setup.elapsed);

    // A 64 MiB AllReduce with real data: every rank contributes
    // rank-dependent values and receives the exact elementwise sum.
    let tensor = ByteSize::from_mib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| (*r, vec![(r.0 + 1) as f32; elems]))
        .collect();
    let report = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    let expected: f32 = (1..=cluster.gpu_count() as u32).map(|v| v as f32).sum();
    let got = report.outputs[&Rank(0)][elems / 2];
    println!(
        "allreduce(64 MiB): {} — every rank holds the sum ({got} == {expected})",
        report.comm_time
    );
    assert_eq!(got, expected);

    // The other primitives ride the same synthesized strategies.
    let a2a = cc
        .alltoall(ByteSize::from_mib(32), &BTreeMap::new(), None)
        .expect("healthy fabric");
    println!("alltoall(32 MiB): {}", a2a.comm_time);
    let bc = cc
        .broadcast(Rank(3), ByteSize::from_mib(32), &BTreeMap::new(), None)
        .expect("healthy fabric");
    println!("broadcast(32 MiB from rank 3): {}", bc.comm_time);
    let ag = cc
        .allgather(ByteSize::from_mib(8), &BTreeMap::new(), None)
        .expect("healthy fabric");
    println!("allgather(8 MiB each): {}", ag.comm_time);
}
