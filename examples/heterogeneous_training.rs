//! Heterogeneous data-parallel training: GPT-2 on two A100 and two
//! V100 servers, AdapCC's adaptive relay control versus the NCCL-like
//! baseline (the paper's Fig. 14/16 scenario).
//!
//! ```text
//! cargo run --release --example heterogeneous_training
//! ```

use adapcc_baselines::runner::System;
use adapcc_simnet::cluster::Cluster;
use adapcc_train::trainer::{train, Backend, TrainConfig};
use adapcc_train::workload::DnnModel;

fn main() {
    let cluster = Cluster::heterogeneous_2a100_2v100();
    println!(
        "cluster: 2x A100 servers + 2x V100 servers ({} GPUs)\n",
        cluster.gpu_count()
    );

    let iters = 15;
    let model = DnnModel::Gpt2;
    println!(
        "training {model} (batch {} per GPU, {iters} iterations)\n",
        model.default_batch()
    );

    let mut rows = Vec::new();
    for backend in [
        Backend::AdapCcAdaptive,
        Backend::AdapCcWaitAll,
        Backend::Baseline(System::Nccl),
        Backend::Baseline(System::Msccl),
    ] {
        let report = train(&cluster, &TrainConfig::new(model, backend, iters));
        let partials = report.iterations.iter().filter(|i| i.partial).count();
        rows.push((
            backend.name(),
            report.mean_comm_secs,
            report.throughput,
            partials,
        ));
    }

    println!(
        "{:<14} {:>14} {:>18} {:>9}",
        "backend", "comm (s/iter)", "throughput (sps)", "partials"
    );
    for (name, comm, tput, partials) in &rows {
        println!("{name:<14} {comm:>14.4} {tput:>18.1} {partials:>9}");
    }
    let adapcc = rows[0].2;
    let nccl = rows[2].2;
    println!(
        "\nAdapCC / NCCL training throughput: {:.2}x on RDMA (paper: up to 1.31x;\n\
         on this 2+2 RDMA cluster both systems sit on the V100-NIC duplex floor —\n\
         the big AdapCC wins appear on TCP and asymmetric allocations, see fig14)",
        adapcc / nccl
    );

    // Which GPUs get picked as relays? On a heterogeneous cluster the
    // slower V100s (ranks 8..16) should dominate (paper Fig. 15).
    let report = train(
        &cluster,
        &TrainConfig::new(model, Backend::AdapCcAdaptive, 30).with_seed(7),
    );
    println!("\nrelay probability per rank (V100s are ranks 8..16):");
    for (rank, p) in &report.relay_probability {
        if *p > 0.0 {
            println!("  rank {rank:>2}: {:>5.1}%", p * 100.0);
        }
    }
}
