//! Mixture-of-Experts expert parallelism: every training step routes
//! token activations between experts with AlltoAll (the fastMoE
//! pattern the paper replaces with `adapcc.alltoall()`).
//!
//! ```text
//! cargo run --release --example moe_expert_parallel
//! ```

use std::collections::BTreeMap;

use adapcc::{AdapCC, InitOptions};
use adapcc_baselines::runner::{Runner, System};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;

fn main() {
    // One expert per GPU across four servers (the paper's MoE setup).
    let cluster = Cluster::homogeneous_a100(4);
    let n = cluster.gpu_count();
    println!("expert parallelism: {n} experts on {n} GPUs\n");

    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    cc.setup();

    // Token dispatch: each expert sends a shard of its batch to every
    // other expert. 512 MB of activations per step (paper's MoE size).
    let tensor = ByteSize::from_mib(512);
    let elems = (tensor.as_u64() / 4) as usize;
    // Real payloads on a smaller tensor to verify the routing exactly.
    let small = ByteSize::from_bytes((n * 1024 * 4) as u64);
    let small_elems = n * 1024;
    let inputs: BTreeMap<Rank, Vec<f32>> = (0..n)
        .map(|r| {
            (
                Rank(r),
                (0..small_elems)
                    .map(|i| (r * 100 + i / 1024) as f32)
                    .collect(),
            )
        })
        .collect();
    let verify = cc
        .alltoall(small, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    // Expert j's shard i came from expert i's shard j.
    let out = &verify.outputs[&Rank(1)];
    // input[r][i] = r*100 + (i / 1024): expert 1's shard 0 is expert 0's
    // shard 1, whose values are 0*100 + 1.
    assert_eq!(out[0], 1.0, "expert 1 shard 0 = expert 0's shard 1");
    println!("token routing verified: expert 1 holds expert 0's shard\n");

    // Dispatch timing at full size, AdapCC vs the baselines.
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let runner = Runner::new(&cluster, &topo, &profile);
    let ranks: Vec<Rank> = (0..n).map(Rank).collect();
    println!("{:<8} {:>12} {:>12}", "system", "dispatch", "Algo.bw");
    for sys in [System::AdapCc, System::Nccl, System::Msccl] {
        let r = runner.run(sys, Primitive::AllToAll, tensor, &ranks, &BTreeMap::new());
        println!(
            "{:<8} {:>9.1} ms {:>9.2} GB/s",
            sys.name(),
            r.comm_time.as_millis(),
            r.algo_bw_gbytes
        );
    }
    println!(
        "\n(paper Fig. 13 reports +31% over NCCL P2P; in this fluid model AlltoAll\n\
         is volume-bound at every NIC, so all systems sit near the same floor —\n\
         see EXPERIMENTS.md for the documented deviation)"
    );
    let _ = elems;
}
