//! The DDP communication hook: bucketed gradient AllReduce overlapped
//! with the backward pass, versus one monolithic post-backward
//! collective (paper Sec. VI-A exposes exactly this hook to PyTorch
//! DDP users).
//!
//! ```text
//! cargo run --release --example ddp_overlap
//! ```

use std::collections::BTreeMap;

use adapcc::ddp::{default_bucket_cap, BucketLayout, DdpHook};
use adapcc::{AdapCC, InitOptions};
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;

fn main() {
    let cluster = Cluster::homogeneous_a100(4);
    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    cc.setup();

    // ViT-sized gradients, 25 MB buckets (PyTorch's default cap).
    let model = ByteSize::from_mib(208);
    let layout = BucketLayout::from_model(model, default_bucket_cap());
    println!(
        "model {} -> {} buckets of <= {}",
        model,
        layout.len(),
        default_bucket_cap()
    );

    // Backward takes 180-195 ms depending on the worker.
    let backward: BTreeMap<Rank, SimTime> = cc
        .workers()
        .iter()
        .map(|r| (*r, SimTime::from_secs(0.180 + (r.0 % 4) as f64 * 0.005)))
        .collect();

    let hook = DdpHook::new(layout);
    let round = hook.round(&mut cc, &backward);
    println!("\nbucketed (DDP hook):");
    for (i, t) in round.bucket_finish.iter().enumerate() {
        println!("  bucket {i:>2} synchronized at {t}");
    }
    println!("  all gradients in sync at {}", round.finish);
    println!("  exposed communication: {}", round.exposed_comm);

    let mono = cc
        .allreduce(model, &backward, None)
        .expect("healthy fabric");
    println!("\nmonolithic allreduce after backward:");
    println!("  finished at {}", mono.finish);
    println!(
        "\noverlap win: {:.1} ms ({:.0}% of the monolithic exposed comm hidden)",
        (mono.finish.as_secs() - round.finish.as_secs()) * 1e3,
        (1.0 - round.exposed_comm.as_secs() / (mono.finish.as_secs() - 0.195).max(1e-9)) * 100.0
    );
}
