//! Fault tolerance: a worker dies mid-training; AdapCC detects it
//! after phase 1, excludes it, and keeps training — no checkpoint, no
//! relaunch. The NCCL path would hang and need a full restart
//! (paper Sec. IV-C-2 and Fig. 19(c)).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::collections::BTreeMap;

use adapcc::reconstruct::nccl_restart_cost;
use adapcc::{AdapCC, InitOptions};
use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::faults::{nic_links, Fault, FaultSchedule};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;

fn main() {
    let cluster = Cluster::homogeneous_a100(4);
    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    cc.setup();
    let tensor = ByteSize::from_mib(208); // ViT-sized gradients

    // A few healthy iterations.
    for i in 0..3 {
        let ready = healthy_ready(&cluster, i);
        let rep = cc
            .allreduce_adaptive(tensor, &ready, None)
            .expect("healthy fabric");
        println!("iter {i}: comm {}", rep.comm_time);
    }

    // Rank 11 dies: it never reports a ready tensor.
    println!("\n--- rank 11 crashes ---");
    let mut ready = healthy_ready(&cluster, 3);
    ready.remove(&Rank(11));
    let rep = cc
        .allreduce_adaptive(tensor, &ready, None)
        .expect("healthy fabric");
    println!(
        "iter 3: comm {} — faults detected: {:?}",
        rep.comm_time, rep.faults
    );
    assert_eq!(rep.faults, vec![Rank(11)]);

    // Exclude the dead worker; the data loader re-shards (the global
    // batch size is preserved by the training side) and the job keeps
    // going with 15 workers.
    cc.exclude_workers(&rep.faults);
    println!("continuing with {} workers", cc.workers().len());
    for i in 4..6 {
        let ready = survivors_ready(cc.workers(), i);
        let rep = cc
            .allreduce_adaptive(tensor, &ready, None)
            .expect("healthy fabric");
        println!("iter {i}: comm {} (no restart needed)", rep.comm_time);
        assert!(rep.faults.is_empty());
    }

    // Act 2: transport-level faults through the fault-injection
    // subsystem — a 40 ms flap of server 0's NIC ports heals under
    // retry-with-backoff, then a worker crash forces a permanent
    // exclusion and an in-place graph reconstruction. One schedule,
    // one training loop, no restart.
    println!("\n--- injected faults: 40 ms NIC flap at t=0, rank 2 crashes at t=100 ms ---");
    let grads = ByteSize::from_mib(16);
    let mut schedule = FaultSchedule::new();
    for link in nic_links(&cluster, InstanceId(0)) {
        schedule.push(Fault::LinkDown {
            link,
            from: SimTime::ZERO,
            until: SimTime::from_secs(0.040),
        });
    }
    schedule.push(Fault::WorkerCrash {
        rank: Rank(2),
        at: SimTime::from_secs(0.1),
    });
    cc.inject_faults(schedule);

    let mut iter = 6;
    while cc.session_clock() < SimTime::from_secs(0.12) && iter < 40 {
        match cc.allreduce(grads, &BTreeMap::new(), None) {
            Ok(rep) => println!(
                "iter {iter}: comm {} (session clock {})",
                rep.comm_time,
                cc.session_clock()
            ),
            Err(e) => {
                println!("iter {iter}: unrecoverable: {e}");
                break;
            }
        }
        iter += 1;
    }
    println!("\nrecovery timeline:");
    for event in cc.recovery_log() {
        println!("  {event}");
    }
    println!("job continues with {} workers", cc.workers().len());
    cc.clear_faults();

    // What the static-library path would have cost instead.
    let restart = nccl_restart_cost(tensor, cluster.gpu_count());
    println!(
        "\nNCCL-style recovery for comparison: checkpoint {} + relaunch {} \
         + process group {} + restore {} = {}",
        restart.checkpoint,
        restart.relaunch,
        restart.process_group,
        restart.restore,
        restart.total()
    );
}

fn healthy_ready(cluster: &Cluster, iter: usize) -> BTreeMap<Rank, SimTime> {
    (0..cluster.gpu_count())
        .map(|r| {
            let jitter = ((r * 7 + iter * 13) % 10) as f64 * 1e-3;
            (Rank(r), SimTime::from_secs(0.2 + jitter))
        })
        .collect()
}

fn survivors_ready(workers: &[Rank], iter: usize) -> BTreeMap<Rank, SimTime> {
    workers
        .iter()
        .map(|r| {
            let jitter = ((r.0 * 7 + iter * 13) % 10) as f64 * 1e-3;
            (*r, SimTime::from_secs(0.2 + jitter))
        })
        .collect()
}
