//! Fault tolerance: a worker dies mid-training; AdapCC detects it
//! after phase 1, excludes it, and keeps training — no checkpoint, no
//! relaunch. The NCCL path would hang and need a full restart
//! (paper Sec. IV-C-2 and Fig. 19(c)).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::collections::BTreeMap;

use adapcc::reconstruct::nccl_restart_cost;
use adapcc::session::InitOptions;
use adapcc::AdapCC;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;

fn main() {
    let cluster = Cluster::homogeneous_a100(4);
    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    cc.setup();
    let tensor = ByteSize::from_mib(208); // ViT-sized gradients

    // A few healthy iterations.
    for i in 0..3 {
        let ready = healthy_ready(&cluster, i);
        let rep = cc.allreduce_adaptive(tensor, &ready, None);
        println!("iter {i}: comm {}", rep.comm_time);
    }

    // Rank 11 dies: it never reports a ready tensor.
    println!("\n--- rank 11 crashes ---");
    let mut ready = healthy_ready(&cluster, 3);
    ready.remove(&Rank(11));
    let rep = cc.allreduce_adaptive(tensor, &ready, None);
    println!(
        "iter 3: comm {} — faults detected: {:?}",
        rep.comm_time, rep.faults
    );
    assert_eq!(rep.faults, vec![Rank(11)]);

    // Exclude the dead worker; the data loader re-shards (the global
    // batch size is preserved by the training side) and the job keeps
    // going with 15 workers.
    cc.exclude_workers(&rep.faults);
    println!("continuing with {} workers", cc.workers().len());
    for i in 4..6 {
        let ready = survivors_ready(cc.workers(), i);
        let rep = cc.allreduce_adaptive(tensor, &ready, None);
        println!("iter {i}: comm {} (no restart needed)", rep.comm_time);
        assert!(rep.faults.is_empty());
    }

    // What the static-library path would have cost instead.
    let restart = nccl_restart_cost(tensor, cluster.gpu_count());
    println!(
        "\nNCCL-style recovery for comparison: checkpoint {} + relaunch {} \
         + process group {} + restore {} = {}",
        restart.checkpoint,
        restart.relaunch,
        restart.process_group,
        restart.restore,
        restart.total()
    );
}

fn healthy_ready(cluster: &Cluster, iter: usize) -> BTreeMap<Rank, SimTime> {
    (0..cluster.gpu_count())
        .map(|r| {
            let jitter = ((r * 7 + iter * 13) % 10) as f64 * 1e-3;
            (Rank(r), SimTime::from_secs(0.2 + jitter))
        })
        .collect()
}

fn survivors_ready(workers: &[Rank], iter: usize) -> BTreeMap<Rank, SimTime> {
    workers
        .iter()
        .map(|r| {
            let jitter = ((r.0 * 7 + iter * 13) % 10) as f64 * 1e-3;
            (*r, SimTime::from_secs(0.2 + jitter))
        })
        .collect()
}
