//! Volatile cloud networking: link bandwidth follows a synthetic
//! public-cloud trace; AdapCC re-profiles on the fly and reconstructs
//! its communication graph in place when the picture shifts — no
//! checkpoint, no restart (paper Sec. VI-D "Volatile Network" and
//! Fig. 19(c)).
//!
//! ```text
//! cargo run --release --example volatile_network
//! ```

use std::collections::BTreeMap;

use adapcc::{AdapCC, InitOptions};
use adapcc_simnet::cluster::{Cluster, InstanceId, LinkId};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::trace::CloudTrace;
use adapcc_simnet::units::ByteSize;

fn main() {
    let cluster = Cluster::homogeneous_a100(4);
    let mut cc = AdapCC::init(&cluster, InitOptions::default());
    cc.setup();
    let tensor = ByteSize::from_mib(256);

    // A 30-minute cloud trace, amplified 1.5x like the paper's tc
    // shaping experiment.
    let trace = CloudTrace::synthesize(42, 1800.0, 60.0).amplified(0.5);
    println!(
        "trace: worst bandwidth degradation {:.0}%\n",
        trace.stats().worst_bandwidth_degradation * 100.0
    );

    // Instance 0's NIC follows the trace; everyone else stays nominal.
    let shaped: Vec<LinkId> = vec![
        cluster.nic_egress_link(InstanceId(0)),
        cluster.nic_ingress_link(InstanceId(0)),
    ];

    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>10}",
        "t (min)", "bw factor", "comm (ms)", "reprofiled?", "rebuilt?"
    );
    for step in (0..30).step_by(5) {
        let at = SimTime::from_secs(step as f64 * 60.0);
        let factor = trace.sample(at).bandwidth_factor;
        let factors: Vec<(LinkId, f64)> = shaped.iter().map(|l| (*l, factor)).collect();
        cc.set_fabric_factors(factors);

        // Periodic on-the-fly re-profiling (the paper does this every
        // 500 iterations): profile, re-solve if the links changed.
        let recon = cc.reprofile();
        let rep = cc
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        println!(
            "{:>8} {:>10.2} {:>14.1} {:>12} {:>10}",
            step,
            factor,
            rep.comm_time.as_millis(),
            "yes",
            if recon.changed { "yes" } else { "no" }
        );
        if recon.changed {
            println!(
                "         reconstruction: profiling {} + solving {} + setup {} = {} \
                 (vs many seconds for a checkpoint/restart)",
                recon.profiling,
                recon.solving,
                recon.setup,
                recon.total()
            );
        }
    }
}
